//! Write-ahead job journal and content-addressed result store.
//!
//! The source paper's nonvolatile processor survives power failure by
//! checkpointing to NVM and resuming exactly where it left off; this
//! module gives the campaign *server* the same property. Before a job
//! is promised to a client (`Accepted` frame), it is made durable in an
//! append-only journal under `--state-dir`; after a crash, a restarted
//! server replays the journal, re-enqueues every job that was admitted
//! but not completed, and serves already-finished work straight from a
//! content-addressed result store without re-simulating.
//!
//! ## Journal format
//!
//! One file, `journal.log`, using the exact record-framing idiom of
//! the simulation cache's shard logs (`nvp_experiments::persist`) and
//! the checkpoint subsystem's CRC ([`nvp_sim::crc32_bytes`]): an
//! 8-byte magic `b"nvpjrnl1"`, then length-prefixed, CRC-framed
//! records:
//!
//! ```text
//! [len: u32 le] [crc32: u32 le] [payload: len bytes]
//! payload = tag (1 byte) ++ body
//!   tag 1 Admitted:  job u64 ++ key 32B ++ req_len u32 ++ request wire bytes
//!   tag 2 Started:   job u64
//!   tag 3 Completed: job u64 ++ result digest 32B
//! ```
//!
//! `key` is the request's content-addressed idempotency key
//! ([`nvp_experiments::wire::request_key`]); the `Completed` digest is
//! the SHA-256 of the stored result encoding, tying the log to the
//! store.
//!
//! ## Recovery state machine
//!
//! A journal entry moves `Admitted` → `Started` → `Completed`. On
//! open, the scan folds records into a per-job state; every job that
//! never reached `Completed` is **pending** and gets re-enqueued
//! (whether or not it `Started` — jobs are idempotent through the
//! simulation cache, so restarting a half-run job is merely warm). The
//! journal is then **compacted**: rewritten (tmp + atomic rename) to
//! hold exactly the pending `Admitted` records. Compaction also runs
//! at runtime whenever the live set empties.
//!
//! A torn tail record — the shape an injected or real crash leaves —
//! is dropped and counted. Any damage beyond that (bad magic, corrupt
//! interior record) additionally **quarantines** the journal: the file
//! is copied aside as `journal.log.quarantine[.N]` before the rewrite,
//! so the evidence survives while the server carries on with what it
//! could salvage. The store never aborts the server over a bad file.
//!
//! ## Result store
//!
//! `results/<key-hex>.res` holds the canonical wire encoding
//! ([`nvp_experiments::wire::encode_result_bytes`]) of each completed
//! job's values, written tmp-then-rename so readers never observe a
//! half file. Lookups verify decodability; a corrupt entry is
//! quarantined (renamed) and reported as a miss, which simply re-runs
//! the job against the warm simulation cache.

use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use nvp_experiments::wire::{
    content_digest, decode_request_bytes, decode_result_bytes, encode_request_bytes,
    encode_result_bytes,
};
use nvp_experiments::{CampaignRequest, CampaignResult};
use nvp_sim::crc32_bytes;

use crate::faultplan::{AppendAction, ServiceFaultPlan, CRASH_EXIT_CODE};

/// Journal-file magic: `nvpjrnl` + schema version digit.
const MAGIC: &[u8; 8] = b"nvpjrnl1";

/// Record tags.
const TAG_ADMITTED: u8 = 1;
const TAG_STARTED: u8 = 2;
const TAG_COMPLETED: u8 = 3;

/// Upper bound a record length prefix may claim before the scan stops
/// trusting the framing (a request is a few hundred bytes at most).
const MAX_RECORD_BYTES: u32 = 1 << 20;

/// A 256-bit content digest (idempotency key or result digest).
pub type Digest = [u8; 32];

/// A journalled job that must be re-run (admitted, never completed).
#[derive(Debug, Clone, PartialEq)]
pub struct PendingJob {
    /// The job id the original server assigned (ids stay stable across
    /// restarts so clients' logs line up).
    pub id: u64,
    /// The request's content-addressed idempotency key.
    pub key: Digest,
    /// The request itself, decoded from the journalled wire bytes.
    pub request: CampaignRequest,
}

/// What [`Journal::open`] recovered from a state directory.
#[derive(Debug, Default)]
pub struct Recovery {
    /// Jobs to re-enqueue, in admission order.
    pub pending: Vec<PendingJob>,
    /// The next job id to assign (one past the highest journalled id).
    pub next_job: u64,
    /// Records dropped during the scan (torn tail, corrupt interior).
    pub skipped: u64,
    /// Files quarantined while opening (damaged journal, undecodable
    /// results).
    pub quarantined: u64,
}

/// Per-job fold state during the recovery scan.
#[derive(Debug)]
struct ScanEntry {
    key: Digest,
    request_bytes: Vec<u8>,
    completed: bool,
}

/// Appendable journal state guarded by one lock: the append handle and
/// the live-entry count that triggers compaction.
#[derive(Debug)]
struct Inner {
    file: fs::File,
    /// Admitted-but-not-completed entries in the current journal file.
    live: u64,
}

/// An open write-ahead journal plus its content-addressed result store.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    results_dir: PathBuf,
    faults: ServiceFaultPlan,
    inner: Mutex<Inner>,
    quarantined: AtomicU64,
    compactions: AtomicU64,
}

impl Journal {
    /// Opens (creating if missing) the journal under `state_dir`,
    /// replays it, compacts it down to the pending set, and returns
    /// the recovery outcome.
    ///
    /// # Errors
    ///
    /// Directory/file creation failures pass through; *content* damage
    /// never errors — it is quarantined and counted instead.
    pub fn open(state_dir: &Path, faults: ServiceFaultPlan) -> io::Result<(Journal, Recovery)> {
        let results_dir = state_dir.join("results");
        fs::create_dir_all(&results_dir)?;
        let path = state_dir.join("journal.log");

        let mut recovery = Recovery::default();
        let mut trustworthy = true;
        match fs::read(&path) {
            Ok(bytes) => scan(&bytes, &mut recovery, &mut trustworthy),
            Err(e) if e.kind() == io::ErrorKind::NotFound => {}
            Err(_) => {
                recovery.skipped += 1;
                trustworthy = false;
            }
        }
        if !trustworthy || recovery.skipped > 0 {
            // Keep the evidence. `fs::copy` (not rename) so a crash
            // during the rewrite below still leaves `journal.log` to
            // rescan — recovery must never lose admitted jobs.
            if path.exists() && quarantine_copy(&path).is_ok() {
                recovery.quarantined += 1;
                eprintln!(
                    "nvpd: journal {} damaged ({} record(s) dropped); quarantined a copy",
                    path.display(),
                    recovery.skipped
                );
            }
        }

        let journal = Journal {
            path,
            results_dir,
            faults,
            // Placeholder handle; `rewrite` below installs the real one.
            inner: Mutex::new(Inner {
                file: fs::File::create(state_dir.join(".journal.init"))?,
                live: 0,
            }),
            quarantined: AtomicU64::new(recovery.quarantined),
            compactions: AtomicU64::new(0),
        };
        let _ = fs::remove_file(state_dir.join(".journal.init"));
        // Startup compaction: the new journal holds exactly the
        // pending admissions (tmp + atomic rename, so a crash here
        // leaves the old journal intact).
        journal.rewrite(&recovery.pending)?;
        Ok((journal, recovery))
    }

    /// Journals an admission — MUST be durable before the `Accepted`
    /// frame is sent (write-ahead: promise only what is logged).
    ///
    /// # Errors
    ///
    /// Append I/O errors pass through (callers degrade gracefully).
    pub fn admitted(&self, job: u64, key: &Digest, request: &CampaignRequest) -> io::Result<()> {
        let req_bytes = encode_request_bytes(request);
        let mut body = Vec::with_capacity(1 + 8 + 32 + 4 + req_bytes.len());
        body.push(TAG_ADMITTED);
        body.extend_from_slice(&job.to_le_bytes());
        body.extend_from_slice(key);
        body.extend_from_slice(&(req_bytes.len() as u32).to_le_bytes());
        body.extend_from_slice(&req_bytes);
        let mut inner = self.lock();
        inner.live += 1;
        self.append_record(&mut inner, &body)
    }

    /// Journals the start-of-execution transition.
    ///
    /// # Errors
    ///
    /// Append I/O errors pass through.
    pub fn started(&self, job: u64) -> io::Result<()> {
        let mut body = Vec::with_capacity(9);
        body.push(TAG_STARTED);
        body.extend_from_slice(&job.to_le_bytes());
        let mut inner = self.lock();
        self.append_record(&mut inner, &body)
    }

    /// Journals completion (with the stored result's digest) and
    /// compacts the journal once no live entries remain.
    ///
    /// # Errors
    ///
    /// Append I/O errors pass through.
    pub fn completed(&self, job: u64, digest: &Digest) -> io::Result<()> {
        let mut body = Vec::with_capacity(1 + 8 + 32);
        body.push(TAG_COMPLETED);
        body.extend_from_slice(&job.to_le_bytes());
        body.extend_from_slice(digest);
        let mut inner = self.lock();
        self.append_record(&mut inner, &body)?;
        inner.live = inner.live.saturating_sub(1);
        if inner.live == 0 {
            // Everything journalled is done: shrink the log to its
            // header so restarts replay nothing.
            self.compact(&mut inner)?;
        }
        Ok(())
    }

    /// Stores a completed result under its request's idempotency key
    /// (tmp + atomic rename) and returns the content digest of the
    /// stored bytes.
    ///
    /// # Errors
    ///
    /// Store I/O errors pass through.
    pub fn put_result(&self, key: &Digest, result: &CampaignResult) -> io::Result<Digest> {
        let bytes = encode_result_bytes(result);
        let digest = content_digest(&bytes);
        let path = self.result_path(key);
        if !path.exists() {
            let tmp = path.with_extension("res.tmp");
            fs::write(&tmp, &bytes)?;
            fs::rename(&tmp, &path)?;
        }
        Ok(digest)
    }

    /// Fetches a completed result by idempotency key, or `None` on a
    /// miss. An undecodable entry is quarantined (renamed aside,
    /// counted) and reported as a miss — degradation, not an abort.
    #[must_use]
    pub fn lookup_result(&self, key: &Digest) -> Option<CampaignResult> {
        let path = self.result_path(key);
        let bytes = fs::read(&path).ok()?;
        match decode_result_bytes(&bytes) {
            Ok(result) => Some(result),
            Err(_) => {
                if quarantine_rename(&path).is_ok() {
                    self.quarantined.fetch_add(1, Ordering::Relaxed);
                    eprintln!(
                        "nvpd: result store entry {} undecodable; quarantined",
                        path.display()
                    );
                }
                None
            }
        }
    }

    /// Files this journal has quarantined so far (including at open).
    #[must_use]
    pub fn quarantined_total(&self) -> u64 {
        self.quarantined.load(Ordering::Relaxed)
    }

    /// Completed-set compactions performed (startup rewrite excluded).
    #[must_use]
    pub fn compactions(&self) -> u64 {
        self.compactions.load(Ordering::Relaxed)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn result_path(&self, key: &Digest) -> PathBuf {
        self.results_dir.join(format!("{}.res", hex(key)))
    }

    /// Frames `body` and appends it through the fault plan: a planned
    /// tear writes a prefix and aborts the process, leaving exactly the
    /// torn-tail shape recovery must tolerate.
    fn append_record(&self, inner: &mut Inner, body: &[u8]) -> io::Result<()> {
        let mut record = Vec::with_capacity(8 + body.len());
        record.extend_from_slice(&(body.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32_bytes(body).to_le_bytes());
        record.extend_from_slice(body);
        match self.faults.journal_append_action(record.len()) {
            AppendAction::Full => inner.file.write_all(&record),
            AppendAction::TearAndCrash(bytes) => {
                let _ = inner.file.write_all(&record[..bytes]);
                let _ = inner.file.sync_all();
                eprintln!("nvpd: injected crash (torn append, {bytes} of {} bytes)", record.len());
                std::process::exit(CRASH_EXIT_CODE);
            }
            AppendAction::CrashAfter => {
                inner.file.write_all(&record)?;
                let _ = inner.file.sync_all();
                eprintln!("nvpd: injected crash (after append)");
                std::process::exit(CRASH_EXIT_CODE);
            }
        }
    }

    /// Rewrites the journal to `MAGIC` + one `Admitted` record per
    /// pending job, atomically, and installs the fresh append handle.
    fn rewrite(&self, pending: &[PendingJob]) -> io::Result<()> {
        let mut inner = self.lock();
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut out = Vec::new();
            out.extend_from_slice(MAGIC);
            for job in pending {
                let req_bytes = encode_request_bytes(&job.request);
                let mut body = Vec::with_capacity(1 + 8 + 32 + 4 + req_bytes.len());
                body.push(TAG_ADMITTED);
                body.extend_from_slice(&job.id.to_le_bytes());
                body.extend_from_slice(&job.key);
                body.extend_from_slice(&(req_bytes.len() as u32).to_le_bytes());
                body.extend_from_slice(&req_bytes);
                out.extend_from_slice(&(body.len() as u32).to_le_bytes());
                out.extend_from_slice(&crc32_bytes(&body).to_le_bytes());
                out.extend_from_slice(&body);
            }
            let mut f = fs::File::create(&tmp)?;
            f.write_all(&out)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        inner.file = fs::OpenOptions::new().append(true).open(&self.path)?;
        inner.live = pending.len() as u64;
        Ok(())
    }

    /// Runtime compaction: every journalled entry is completed, so the
    /// log shrinks back to its header.
    fn compact(&self, inner: &mut Inner) -> io::Result<()> {
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut f = fs::File::create(&tmp)?;
            f.write_all(MAGIC)?;
            f.sync_all()?;
        }
        fs::rename(&tmp, &self.path)?;
        inner.file = fs::OpenOptions::new().append(true).open(&self.path)?;
        self.compactions.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// Folds journal bytes into a [`Recovery`]; `trustworthy` flips false
/// when the damage goes beyond an ordinary torn tail.
fn scan(bytes: &[u8], recovery: &mut Recovery, trustworthy: &mut bool) {
    use std::collections::BTreeMap;
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        if !bytes.is_empty() {
            recovery.skipped += 1;
            *trustworthy = false;
        }
        return;
    }
    let mut entries: BTreeMap<u64, ScanEntry> = BTreeMap::new();
    let mut off = MAGIC.len();
    while off < bytes.len() {
        let Some(header) = bytes.get(off..off + 8) else {
            recovery.skipped += 1; // torn length/CRC prefix at the tail
            break;
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes"));
        let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        if len > MAX_RECORD_BYTES {
            recovery.skipped += 1;
            *trustworthy = false; // implausible framing: stop trusting
            break;
        }
        let Some(body) = bytes.get(off + 8..off + 8 + len as usize) else {
            recovery.skipped += 1; // torn tail record
            break;
        };
        off += 8 + len as usize;
        if crc32_bytes(body) != crc {
            recovery.skipped += 1;
            // Interior corruption (the tail would have been truncated):
            // framing still resyncs on the next length prefix, but the
            // file deserves quarantine.
            *trustworthy = false;
            continue;
        }
        if decode_record(body, &mut entries).is_none() {
            recovery.skipped += 1;
            *trustworthy = false;
        }
    }
    recovery.next_job = entries.keys().next_back().map_or(0, |max| max + 1);
    for (id, entry) in entries {
        if entry.completed {
            continue;
        }
        match decode_request_bytes(&entry.request_bytes) {
            Ok(request) => {
                recovery.pending.push(PendingJob { id, key: entry.key, request });
            }
            Err(_) => {
                // CRC-valid but undecodable request (e.g. journalled by
                // a different protocol revision): drop it — the client
                // will resubmit under the current protocol.
                recovery.skipped += 1;
                *trustworthy = false;
            }
        }
    }
}

/// Applies one CRC-valid record body to the fold state; `None` marks a
/// malformed body.
fn decode_record(
    body: &[u8],
    entries: &mut std::collections::BTreeMap<u64, ScanEntry>,
) -> Option<()> {
    let (&tag, rest) = body.split_first()?;
    match tag {
        TAG_ADMITTED => {
            if rest.len() < 8 + 32 + 4 {
                return None;
            }
            let job = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
            let mut key = [0u8; 32];
            key.copy_from_slice(&rest[8..40]);
            let req_len = u32::from_le_bytes(rest[40..44].try_into().expect("4 bytes")) as usize;
            let req = rest.get(44..44 + req_len)?;
            if rest.len() != 44 + req_len {
                return None; // trailing bytes
            }
            entries.insert(job, ScanEntry { key, request_bytes: req.to_vec(), completed: false });
            Some(())
        }
        TAG_STARTED => {
            let _job: [u8; 8] = rest.try_into().ok()?;
            // Started is informational; recovery re-runs regardless.
            Some(())
        }
        TAG_COMPLETED => {
            if rest.len() != 8 + 32 {
                return None;
            }
            let job = u64::from_le_bytes(rest[..8].try_into().expect("8 bytes"));
            if let Some(entry) = entries.get_mut(&job) {
                entry.completed = true;
            }
            Some(())
        }
        _ => None,
    }
}

/// Copies a damaged journal to the first free `.quarantine[.N]` name
/// (copy, not rename — see [`Journal::open`]).
fn quarantine_copy(path: &Path) -> io::Result<PathBuf> {
    let target = free_quarantine_name(path)?;
    fs::copy(path, &target)?;
    Ok(target)
}

/// Renames a damaged result-store entry to its quarantine name.
fn quarantine_rename(path: &Path) -> io::Result<PathBuf> {
    let target = free_quarantine_name(path)?;
    fs::rename(path, &target)?;
    Ok(target)
}

fn free_quarantine_name(path: &Path) -> io::Result<PathBuf> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let name = path
        .file_name()
        .and_then(|n| n.to_str())
        .ok_or_else(|| io::Error::other("path has no utf-8 file name"))?;
    for n in 1..=1000u32 {
        let candidate = if n == 1 {
            dir.join(format!("{name}.quarantine"))
        } else {
            dir.join(format!("{name}.quarantine.{n}"))
        };
        if !candidate.exists() {
            return Ok(candidate);
        }
    }
    Err(io::Error::other("no free quarantine name after 1000 attempts"))
}

/// Lowercase hex of a digest (result-store file names).
fn hex(digest: &Digest) -> String {
    use std::fmt::Write as _;
    digest.iter().fold(String::with_capacity(64), |mut s, b| {
        write!(s, "{b:02x}").expect("write to String");
        s
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_experiments::wire::request_key;
    use nvp_experiments::ExpConfig;

    fn unique_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::AtomicUsize;
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("{tag}_{}_{n}", std::process::id()))
    }

    fn request(seed: u64) -> CampaignRequest {
        let mut req = CampaignRequest::all(ExpConfig::quick());
        req.only = Some(vec!["t1".to_string()]);
        req.seed = Some(seed);
        req
    }

    #[test]
    fn fresh_journal_recovers_nothing() {
        let dir = unique_dir("nvpd_journal_fresh");
        let (journal, recovery) = Journal::open(&dir, ServiceFaultPlan::none()).unwrap();
        assert!(recovery.pending.is_empty());
        assert_eq!(recovery.next_job, 0);
        assert_eq!(recovery.skipped, 0);
        assert_eq!(recovery.quarantined, 0);
        assert_eq!(journal.quarantined_total(), 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn admitted_without_completed_is_reenqueued_with_stable_ids() {
        let dir = unique_dir("nvpd_journal_pending");
        let (journal, _) = Journal::open(&dir, ServiceFaultPlan::none()).unwrap();
        let (ra, rb) = (request(1), request(2));
        let (ka, kb) = (request_key(&ra), request_key(&rb));
        journal.admitted(0, &ka, &ra).unwrap();
        journal.started(0).unwrap();
        journal.admitted(1, &kb, &rb).unwrap();
        drop(journal);

        let (_, recovery) = Journal::open(&dir, ServiceFaultPlan::none()).unwrap();
        assert_eq!(recovery.next_job, 2, "ids keep counting past journalled jobs");
        assert_eq!(recovery.pending.len(), 2, "neither job completed");
        assert_eq!(recovery.pending[0], PendingJob { id: 0, key: ka, request: ra });
        assert_eq!(recovery.pending[1], PendingJob { id: 1, key: kb, request: rb });
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn completed_jobs_are_not_reenqueued_and_empty_live_set_compacts() {
        let dir = unique_dir("nvpd_journal_complete");
        let (journal, _) = Journal::open(&dir, ServiceFaultPlan::none()).unwrap();
        let req = request(3);
        let key = request_key(&req);
        journal.admitted(0, &key, &req).unwrap();
        journal.started(0).unwrap();
        journal.completed(0, &[0u8; 32]).unwrap();
        assert_eq!(journal.compactions(), 1, "live set emptied: journal compacts");
        // Compaction shrank the log to its header.
        assert_eq!(fs::read(dir.join("journal.log")).unwrap(), MAGIC);
        drop(journal);
        let (_, recovery) = Journal::open(&dir, ServiceFaultPlan::none()).unwrap();
        assert!(recovery.pending.is_empty());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_dropped_and_journal_quarantined() {
        let dir = unique_dir("nvpd_journal_torn");
        let (journal, _) = Journal::open(&dir, ServiceFaultPlan::none()).unwrap();
        let (ra, rb) = (request(4), request(5));
        journal.admitted(0, &request_key(&ra), &ra).unwrap();
        journal.admitted(1, &request_key(&rb), &rb).unwrap();
        drop(journal);
        let path = dir.join("journal.log");
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 10]).unwrap(); // tear the tail
        let (journal, recovery) = Journal::open(&dir, ServiceFaultPlan::none()).unwrap();
        assert_eq!(recovery.pending.len(), 1, "intact prefix survives");
        assert_eq!(recovery.pending[0].id, 0);
        assert_eq!(recovery.skipped, 1);
        assert_eq!(recovery.quarantined, 1, "damage quarantines the journal");
        assert!(path.with_extension("log.quarantine").exists());
        drop(journal);
        // The rewrite healed the file: reopening is clean.
        let (_, healed) = Journal::open(&dir, ServiceFaultPlan::none()).unwrap();
        assert_eq!(healed.skipped, 0);
        assert_eq!(healed.pending.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn foreign_journal_is_quarantined_not_fatal() {
        let dir = unique_dir("nvpd_journal_foreign");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join("journal.log"), b"not a journal at all").unwrap();
        let (_, recovery) = Journal::open(&dir, ServiceFaultPlan::none()).unwrap();
        assert!(recovery.pending.is_empty());
        assert_eq!(recovery.quarantined, 1);
        assert!(dir.join("journal.log.quarantine").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn result_store_round_trips_and_quarantines_corruption() {
        let dir = unique_dir("nvpd_journal_results");
        let (journal, _) = Journal::open(&dir, ServiceFaultPlan::none()).unwrap();
        let req = request(6);
        let key = request_key(&req);
        assert!(journal.lookup_result(&key).is_none(), "miss before put");
        let result = nvp_experiments::run_request(&req).unwrap();
        let digest = journal.put_result(&key, &result).unwrap();
        let fetched = journal.lookup_result(&key).expect("hit after put");
        assert_eq!(fetched, result, "store round-trips the result bit-exactly");
        assert_eq!(digest, content_digest(&encode_result_bytes(&result)));
        // Corrupt the stored entry: lookup degrades to a quarantined miss.
        let path = dir.join("results").join(format!("{}.res", hex(&key)));
        let mut bytes = fs::read(&path).unwrap();
        bytes.truncate(bytes.len() / 2);
        fs::write(&path, &bytes).unwrap();
        assert!(journal.lookup_result(&key).is_none());
        assert_eq!(journal.quarantined_total(), 1);
        assert!(path.with_extension("res.quarantine").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn startup_rewrite_compacts_completed_entries_away() {
        let dir = unique_dir("nvpd_journal_rewrite");
        let (journal, _) = Journal::open(&dir, ServiceFaultPlan::none()).unwrap();
        let (ra, rb) = (request(7), request(8));
        journal.admitted(0, &request_key(&ra), &ra).unwrap();
        journal.admitted(1, &request_key(&rb), &rb).unwrap();
        journal.completed(0, &[1u8; 32]).unwrap();
        let before = fs::metadata(dir.join("journal.log")).unwrap().len();
        drop(journal);
        let (_, recovery) = Journal::open(&dir, ServiceFaultPlan::none()).unwrap();
        assert_eq!(recovery.pending.len(), 1);
        assert_eq!(recovery.pending[0].id, 1);
        let after = fs::metadata(dir.join("journal.log")).unwrap().len();
        assert!(after < before, "startup compaction shrank the journal ({before} -> {after})");
        let _ = fs::remove_dir_all(&dir);
    }
}
