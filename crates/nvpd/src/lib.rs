//! # nvpd — the resident campaign server
//!
//! A small TCP daemon that keeps the simulation cache warm across
//! campaigns. Clients (`repro --connect`, `nvpd submit`,
//! [`nvp_experiments::client::submit`]) ship a
//! [`CampaignRequest`] over the [`nvp_experiments::wire`] protocol; the
//! server admits it into a bounded queue, streams an `Accepted` status
//! frame immediately, runs the job through the exact same
//! [`nvp_experiments::run_request`] path an in-process run uses, and
//! streams the `Result` frame back with per-job cache and scheduler
//! counter deltas. Because both transports share that one execution
//! path, the artifacts a client renders are byte-identical to a local
//! run — the golden digests pin both.
//!
//! Admission control rejects, with a `Reject` frame and a reason:
//!
//! * a full queue (back-pressure instead of unbounded buffering),
//! * [`CachePolicy::MemoryOnly`] requests (the daemon's store is
//!   process-wide; it cannot be bypassed per job),
//! * unknown experiment ids (caught before the job occupies a slot),
//! * malformed or non-`Submit` opening frames.
//!
//! Duplicate submissions are deduplicated through the shared
//! content-addressed cache: the second identical job reports zero new
//! simulations in its `Result` frame.
//!
//! ## Crash consistency
//!
//! With `--state-dir`, the server is crash-consistent end to end: a
//! write-ahead [`journal`] records every admission *before* the
//! `Accepted` frame is sent, so a `kill -9` mid-campaign loses
//! nothing — the restarted server replays the journal, re-enqueues
//! admitted-but-not-completed jobs, and answers resubmissions of
//! already-finished requests from a content-addressed result store
//! (the `Result` frame carries `replayed: true` and costs zero new
//! simulations). The [`faultplan`] module injects exactly these
//! crashes on demand; `tests/crash_recovery.rs` proves the round trip
//! byte-identical against uninterrupted runs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod faultplan;
pub mod journal;

use std::collections::VecDeque;
use std::io::{self, Write as _};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use nvp_experiments::wire::{read_frame, request_key, write_frame, Message};
use nvp_experiments::{run_request, CachePolicy, CampaignRequest};

use faultplan::ServiceFaultPlan;
use journal::{Digest, Journal, PendingJob};

/// Default bound on how long the acceptor waits for a client's
/// `Submit` frame ([`ServerConfig::submit_timeout`]), so one stalled
/// client cannot wedge admission for everyone else.
pub const DEFAULT_SUBMIT_TIMEOUT: Duration = Duration::from_secs(30);

/// Tuning knobs for [`Server::run`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bounded admission-queue capacity; a submit that finds the queue
    /// full is rejected rather than buffered without limit.
    pub queue_capacity: usize,
    /// Worker threads executing jobs. The default is 1, which keeps the
    /// per-job cache/scheduler counter deltas exact (each job's
    /// simulations still spread over the work-stealing pool via
    /// `NVP_THREADS`); more workers overlap whole jobs at the cost of
    /// approximate per-job counters.
    pub workers: usize,
    /// Accept this many jobs, then drain the queue and return — the
    /// clean-shutdown path used by tests, benches, and CI smoke runs.
    /// `None` serves forever. Recovered (journal-replayed) jobs do not
    /// count against the budget.
    pub max_jobs: Option<u64>,
    /// Durable state directory for the write-ahead job journal and the
    /// content-addressed result store. `None` runs the server
    /// memoryless, exactly as before journalling existed.
    pub state_dir: Option<PathBuf>,
    /// How long the acceptor waits for each read of a client's
    /// `Submit` frame before dropping the connection.
    pub submit_timeout: Duration,
    /// Injected service faults (tests only; defaults to none).
    pub faults: ServiceFaultPlan,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            queue_capacity: 64,
            workers: 1,
            max_jobs: None,
            state_dir: None,
            submit_timeout: DEFAULT_SUBMIT_TIMEOUT,
            faults: ServiceFaultPlan::none(),
        }
    }
}

/// Counters reported by [`Server::run`] when it returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Jobs admitted into the queue (an `Accepted` frame was sent).
    pub accepted: u64,
    /// Submissions refused at admission (a `Reject` frame was sent).
    pub rejected: u64,
    /// Jobs that ran to completion (a `Result` frame was sent).
    pub completed: u64,
    /// Jobs re-enqueued from the journal at startup (admitted by a
    /// previous process, never completed).
    pub recovered: u64,
    /// Jobs answered from the content-addressed result store without
    /// re-simulation (idempotency-key hits).
    pub replayed: u64,
    /// Damaged files quarantined by the journal/result store this run
    /// (the simulation cache's own quarantines flow separately through
    /// the per-job cache stats).
    pub quarantined: u64,
}

/// An admitted job waiting for a worker: the request, its idempotency
/// key, and (for live submissions) the connection the result frame
/// goes back on. Journal-recovered jobs have no connection — their
/// value is the durable result-store entry the resubmitting client
/// will hit.
struct Job {
    id: u64,
    key: Digest,
    request: CampaignRequest,
    stream: Option<TcpStream>,
}

/// The bounded admission queue: a mutex-guarded deque with a condvar
/// for the workers. `closed` flips when the acceptor is done; workers
/// drain what remains and exit. Generic over the job type so the
/// admission bound is testable without sockets.
struct Queue<T> {
    state: Mutex<(VecDeque<T>, bool)>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Queue<T> {
    fn new(capacity: usize) -> Queue<T> {
        Queue { state: Mutex::new((VecDeque::new(), false)), ready: Condvar::new(), capacity }
    }

    /// The current queue depth if a slot is free, `None` when full.
    /// The acceptor is the *sole* pusher, so a free slot observed here
    /// is still free at the matching [`push`](Self::push) — workers
    /// only ever shrink the queue.
    fn depth_if_free(&self) -> Option<u32> {
        let state = self.state.lock().expect("queue lock");
        if state.0.len() >= self.capacity {
            None
        } else {
            Some(u32::try_from(state.0.len()).unwrap_or(u32::MAX))
        }
    }

    /// Enqueues an admitted job and wakes a worker. Callers must have
    /// observed a free slot via [`depth_if_free`](Self::depth_if_free)
    /// on the same (sole-pusher) thread.
    fn push(&self, job: T) {
        let mut state = self.state.lock().expect("queue lock");
        state.0.push_back(job);
        drop(state);
        self.ready.notify_one();
    }

    /// Blocks for the next job; `None` means the queue is closed and
    /// drained, so the worker should exit.
    fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.0.pop_front() {
                return Some(job);
            }
            if state.1 {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }

    /// Marks the queue closed and wakes every worker to drain it.
    fn close(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.1 = true;
        drop(state);
        self.ready.notify_all();
    }
}

/// A bound campaign server. [`bind`](Server::bind) it, read the
/// ephemeral port back with [`local_addr`](Server::local_addr), then
/// [`run`](Server::run) it (typically on a dedicated thread).
pub struct Server {
    listener: TcpListener,
}

impl Server {
    /// Binds the listening socket (e.g. `127.0.0.1:0` for an ephemeral
    /// port).
    ///
    /// # Errors
    ///
    /// Any socket bind error passes through.
    pub fn bind(addr: &str) -> io::Result<Server> {
        Ok(Server { listener: TcpListener::bind(addr)? })
    }

    /// The bound address, including the kernel-assigned port when bound
    /// to port 0.
    ///
    /// # Errors
    ///
    /// Any socket introspection error passes through.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until `cfg.max_jobs` jobs have been accepted
    /// (forever when `None`), then drains the queue, joins the workers,
    /// and returns the counters.
    ///
    /// With [`ServerConfig::state_dir`] set, the write-ahead journal
    /// is opened (and replayed) first: recovered jobs are enqueued
    /// *before* the accept loop starts, so — with the default single
    /// worker — recovery completes ahead of any newly admitted job.
    ///
    /// # Errors
    ///
    /// Fatal listener errors pass through, as do state-directory
    /// creation failures; per-connection I/O errors (client gone,
    /// malformed frame) and damaged-but-quarantinable state files are
    /// absorbed into the counters.
    pub fn run(&self, cfg: &ServerConfig) -> io::Result<ServerStats> {
        let queue = Queue::new(cfg.queue_capacity.max(1));
        let workers = cfg.workers.max(1);
        let mut stats = ServerStats::default();
        let counters = Counters::default();

        let journal = match &cfg.state_dir {
            Some(dir) => {
                let (journal, recovery) = Journal::open(dir, cfg.faults.clone())?;
                stats.recovered = recovery.pending.len() as u64;
                if !recovery.pending.is_empty() {
                    eprintln!(
                        "nvpd: journal replay — re-enqueueing {} unfinished job(s)",
                        recovery.pending.len()
                    );
                }
                for PendingJob { id, key, request } in recovery.pending {
                    queue.push(Job { id, key, request, stream: None });
                }
                Some((journal, recovery.next_job))
            }
            None => None,
        };
        let (journal, first_id) = match journal {
            Some((j, next)) => (Some(j), next),
            None => (None, 0),
        };
        let journal = journal.as_ref();

        std::thread::scope(|scope| -> io::Result<()> {
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some(job) = queue.pop() {
                        run_job(job, journal, &cfg.faults, &counters);
                    }
                });
            }

            let mut next_job: u64 = first_id;
            for conn in self.listener.incoming() {
                let stream = match conn {
                    Ok(s) => s,
                    // Transient accept errors (e.g. a connection reset
                    // before accept) should not take the server down.
                    Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                    Err(e) => {
                        queue.close();
                        return Err(e);
                    }
                };
                match admit(stream, next_job, &queue, journal, cfg.submit_timeout) {
                    Admission::Accepted => {
                        next_job += 1;
                        stats.accepted += 1;
                    }
                    Admission::Rejected => stats.rejected += 1,
                    Admission::Dropped => {}
                }
                if cfg.max_jobs.is_some_and(|max| stats.accepted >= max) {
                    break;
                }
            }
            queue.close();
            Ok(())
        })?;

        stats.completed = counters.completed.load(Ordering::Relaxed);
        stats.replayed = counters.replayed.load(Ordering::Relaxed);
        if let Some(j) = journal {
            stats.quarantined = j.quarantined_total();
        }
        Ok(stats)
    }
}

/// Worker-side counters, shared across the scope by reference.
#[derive(Debug, Default)]
struct Counters {
    completed: AtomicU64,
    replayed: AtomicU64,
}

/// What became of one incoming connection at admission time.
enum Admission {
    /// Job queued; `Accepted` frame sent.
    Accepted,
    /// `Reject` frame sent (or attempted) with a reason.
    Rejected,
    /// Connection unusable (timeout, framing error, client gone) —
    /// nothing was admitted and no reject could be delivered.
    Dropped,
}

/// Reads one `Submit` frame off a fresh connection and either queues
/// the job (streaming `Accepted`) or answers `Reject` with a reason.
///
/// Write-ahead discipline: with a journal attached, the admission is
/// made durable *before* the `Accepted` frame is sent — the server
/// never promises work it could forget.
fn admit(
    mut stream: TcpStream,
    id: u64,
    queue: &Queue<Job>,
    journal: Option<&Journal>,
    submit_timeout: Duration,
) -> Admission {
    // A stalled or hostile client must not wedge the acceptor.
    if stream.set_read_timeout(Some(submit_timeout)).is_err() {
        return Admission::Dropped;
    }
    let request = match read_frame(&mut stream) {
        Ok(Message::Submit(req)) => req,
        Ok(_) => return reject(stream, "expected a Submit frame to open the connection", false),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return reject(stream, &format!("malformed frame: {e}"), false);
        }
        Err(_) => return Admission::Dropped,
    };
    if request.cache == CachePolicy::MemoryOnly {
        return reject(
            stream,
            "MemoryOnly cache policy is not admissible: the server's resident store is \
             process-wide (run locally with `repro --no-cache` instead)",
            false,
        );
    }
    // Catch unknown experiment ids before the job occupies a queue slot.
    if let Err(e) = request.resolve() {
        return reject(stream, &e.to_string(), false);
    }
    let Some(depth) = queue.depth_if_free() else {
        // The one *retryable* rejection: pressure, not a bad request.
        return reject(stream, "admission queue full; retry later", true);
    };
    let key = request_key(&request);
    if let Some(j) = journal {
        if let Err(e) = j.admitted(id, &key, &request) {
            // Degrade rather than refuse: the job still runs, it just
            // would not survive a crash between here and completion.
            eprintln!("nvpd: warning: journal append failed ({e}); job {id} runs unjournalled");
        }
    }
    // Stream the status frame now, then hand the connection to a
    // worker for the Result frame.
    if write_frame(&mut stream, &Message::Accepted { job: id, queued: depth }).is_err() {
        return Admission::Dropped;
    }
    queue.push(Job { id, key, request, stream: Some(stream) });
    Admission::Accepted
}

/// Sends a `Reject` frame (best effort) and reports the refusal.
/// `retryable` tells the client whether resubmitting later can help.
fn reject(mut stream: TcpStream, reason: &str, retryable: bool) -> Admission {
    let _ = write_frame(&mut stream, &Message::Reject { reason: reason.to_string(), retryable });
    Admission::Rejected
}

/// Writes a frame through the fault plan: an armed one-shot cut
/// delivers only a prefix and severs the socket mid-frame.
fn send_frame(stream: &mut TcpStream, msg: &Message, faults: &ServiceFaultPlan) -> io::Result<()> {
    let mut buf = Vec::new();
    write_frame(&mut buf, msg)?;
    if let Some(cut) = faults.result_frame_cut(buf.len()) {
        let _ = stream.write_all(&buf[..cut]);
        let _ = stream.flush();
        let _ = stream.shutdown(Shutdown::Both);
        eprintln!("nvpd: injected mid-frame drop ({cut} of {} bytes delivered)", buf.len());
        return Err(io::Error::other("injected mid-frame connection drop"));
    }
    stream.write_all(&buf)
}

/// Runs one admitted job and streams its `Result` (or failure
/// `Reject`) frame.
///
/// With a journal attached the job walks the recovery state machine:
/// an idempotency-key hit in the result store answers immediately
/// (`replayed: true`, zero new simulations); otherwise the job runs,
/// its result is stored content-addressed, and the `Completed`
/// transition (with the stored digest) is journalled — compacting the
/// log when it was the last live entry.
fn run_job(job: Job, journal: Option<&Journal>, faults: &ServiceFaultPlan, counters: &Counters) {
    faults.delay_job();
    let Job { id, key, request, stream } = job;

    // Idempotent resubmission: answer from the durable result store.
    if let Some(j) = journal {
        if let Some(result) = j.lookup_result(&key) {
            let digest = nvp_experiments::wire::content_digest(
                &nvp_experiments::wire::encode_result_bytes(&result),
            );
            if let Err(e) = j.completed(id, &digest) {
                eprintln!("nvpd: warning: journal completion failed for job {id}: {e}");
            }
            counters.replayed.fetch_add(1, Ordering::Relaxed);
            if let Some(mut stream) = stream {
                let msg = Message::Result { job: id, replayed: true, result };
                if send_frame(&mut stream, &msg, faults).is_ok() {
                    counters.completed.fetch_add(1, Ordering::Relaxed);
                }
            }
            return;
        }
        if let Err(e) = j.started(id) {
            eprintln!("nvpd: warning: journal start failed for job {id}: {e}");
        }
    }

    match run_request(&request) {
        Ok(result) => {
            if let Some(j) = journal {
                match j.put_result(&key, &result) {
                    Ok(digest) => {
                        if let Err(e) = j.completed(id, &digest) {
                            eprintln!("nvpd: warning: journal completion failed for job {id}: {e}");
                        }
                    }
                    Err(e) => eprintln!("nvpd: warning: result store put failed for job {id}: {e}"),
                }
            }
            if let Some(mut stream) = stream {
                let msg = Message::Result { job: id, replayed: false, result };
                if send_frame(&mut stream, &msg, faults).is_ok() {
                    counters.completed.fetch_add(1, Ordering::Relaxed);
                }
                // Client gone: the work still warmed the cache and the
                // result store; the retry will be a replay.
            }
        }
        Err(e) => {
            if let Some(mut stream) = stream {
                let msg =
                    Message::Reject { reason: format!("job {id} failed: {e}"), retryable: false };
                let _ = send_frame(&mut stream, &msg, faults);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_bound_refuses_when_full_and_depth_counts_waiters() {
        let q: Queue<u64> = Queue::new(2);
        assert_eq!(q.depth_if_free(), Some(0), "empty queue admits at depth 0");
        q.push(1);
        assert_eq!(q.depth_if_free(), Some(1), "one job ahead");
        q.push(2);
        assert_eq!(q.depth_if_free(), None, "at capacity: admission refused");
        assert_eq!(q.pop(), Some(1), "FIFO order");
        assert_eq!(q.depth_if_free(), Some(1), "slot freed by the pop");
    }

    #[test]
    fn closed_queue_drains_then_signals_exit() {
        let q: Queue<u64> = Queue::new(4);
        q.push(7);
        q.push(8);
        q.close();
        assert_eq!(q.pop(), Some(7), "close drains queued jobs first");
        assert_eq!(q.pop(), Some(8));
        assert_eq!(q.pop(), None, "then tells workers to exit");
    }

    #[test]
    fn close_wakes_a_blocked_worker() {
        let q: Queue<u64> = Queue::new(1);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| q.pop());
            q.close();
            assert_eq!(waiter.join().expect("worker thread"), None);
        });
    }

    #[test]
    fn default_config_is_single_worker_for_exact_per_job_counters() {
        let cfg = ServerConfig::default();
        assert_eq!(cfg.workers, 1);
        assert!(cfg.queue_capacity >= 1);
        assert_eq!(cfg.max_jobs, None);
    }
}
