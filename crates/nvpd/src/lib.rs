//! # nvpd — the resident campaign server
//!
//! A small TCP daemon that keeps the simulation cache warm across
//! campaigns. Clients (`repro --connect`, `nvpd submit`,
//! [`nvp_experiments::client::submit`]) ship a
//! [`CampaignRequest`] over the [`nvp_experiments::wire`] protocol; the
//! server admits it into a bounded queue, streams an `Accepted` status
//! frame immediately, runs the job through the exact same
//! [`nvp_experiments::run_request`] path an in-process run uses, and
//! streams the `Result` frame back with per-job cache and scheduler
//! counter deltas. Because both transports share that one execution
//! path, the artifacts a client renders are byte-identical to a local
//! run — the golden digests pin both.
//!
//! Admission control rejects, with a `Reject` frame and a reason:
//!
//! * a full queue (back-pressure instead of unbounded buffering),
//! * [`CachePolicy::MemoryOnly`] requests (the daemon's store is
//!   process-wide; it cannot be bypassed per job),
//! * unknown experiment ids (caught before the job occupies a slot),
//! * malformed or non-`Submit` opening frames.
//!
//! Duplicate submissions are deduplicated through the shared
//! content-addressed cache: the second identical job reports zero new
//! simulations in its `Result` frame.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;

use std::collections::VecDeque;
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use nvp_experiments::wire::{read_frame, write_frame, Message};
use nvp_experiments::{run_request, CachePolicy, CampaignRequest};

/// How long the acceptor waits for a client's `Submit` frame before
/// dropping the connection, so one stalled client cannot wedge
/// admission for everyone else.
const SUBMIT_READ_TIMEOUT: Duration = Duration::from_secs(30);

/// Tuning knobs for [`Server::run`].
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bounded admission-queue capacity; a submit that finds the queue
    /// full is rejected rather than buffered without limit.
    pub queue_capacity: usize,
    /// Worker threads executing jobs. The default is 1, which keeps the
    /// per-job cache/scheduler counter deltas exact (each job's
    /// simulations still spread over the work-stealing pool via
    /// `NVP_THREADS`); more workers overlap whole jobs at the cost of
    /// approximate per-job counters.
    pub workers: usize,
    /// Accept this many jobs, then drain the queue and return — the
    /// clean-shutdown path used by tests, benches, and CI smoke runs.
    /// `None` serves forever.
    pub max_jobs: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig { queue_capacity: 64, workers: 1, max_jobs: None }
    }
}

/// Counters reported by [`Server::run`] when it returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServerStats {
    /// Jobs admitted into the queue (an `Accepted` frame was sent).
    pub accepted: u64,
    /// Submissions refused at admission (a `Reject` frame was sent).
    pub rejected: u64,
    /// Jobs that ran to completion (a `Result` frame was sent).
    pub completed: u64,
}

/// An admitted job waiting for a worker: the request plus the
/// connection the result frame goes back on.
struct Job {
    id: u64,
    request: CampaignRequest,
    stream: TcpStream,
}

/// The bounded admission queue: a mutex-guarded deque with a condvar
/// for the workers. `closed` flips when the acceptor is done; workers
/// drain what remains and exit. Generic over the job type so the
/// admission bound is testable without sockets.
struct Queue<T> {
    state: Mutex<(VecDeque<T>, bool)>,
    ready: Condvar,
    capacity: usize,
}

impl<T> Queue<T> {
    fn new(capacity: usize) -> Queue<T> {
        Queue { state: Mutex::new((VecDeque::new(), false)), ready: Condvar::new(), capacity }
    }

    /// The current queue depth if a slot is free, `None` when full.
    /// The acceptor is the *sole* pusher, so a free slot observed here
    /// is still free at the matching [`push`](Self::push) — workers
    /// only ever shrink the queue.
    fn depth_if_free(&self) -> Option<u32> {
        let state = self.state.lock().expect("queue lock");
        if state.0.len() >= self.capacity {
            None
        } else {
            Some(u32::try_from(state.0.len()).unwrap_or(u32::MAX))
        }
    }

    /// Enqueues an admitted job and wakes a worker. Callers must have
    /// observed a free slot via [`depth_if_free`](Self::depth_if_free)
    /// on the same (sole-pusher) thread.
    fn push(&self, job: T) {
        let mut state = self.state.lock().expect("queue lock");
        state.0.push_back(job);
        drop(state);
        self.ready.notify_one();
    }

    /// Blocks for the next job; `None` means the queue is closed and
    /// drained, so the worker should exit.
    fn pop(&self) -> Option<T> {
        let mut state = self.state.lock().expect("queue lock");
        loop {
            if let Some(job) = state.0.pop_front() {
                return Some(job);
            }
            if state.1 {
                return None;
            }
            state = self.ready.wait(state).expect("queue lock");
        }
    }

    /// Marks the queue closed and wakes every worker to drain it.
    fn close(&self) {
        let mut state = self.state.lock().expect("queue lock");
        state.1 = true;
        drop(state);
        self.ready.notify_all();
    }
}

/// A bound campaign server. [`bind`](Server::bind) it, read the
/// ephemeral port back with [`local_addr`](Server::local_addr), then
/// [`run`](Server::run) it (typically on a dedicated thread).
pub struct Server {
    listener: TcpListener,
}

impl Server {
    /// Binds the listening socket (e.g. `127.0.0.1:0` for an ephemeral
    /// port).
    ///
    /// # Errors
    ///
    /// Any socket bind error passes through.
    pub fn bind(addr: &str) -> io::Result<Server> {
        Ok(Server { listener: TcpListener::bind(addr)? })
    }

    /// The bound address, including the kernel-assigned port when bound
    /// to port 0.
    ///
    /// # Errors
    ///
    /// Any socket introspection error passes through.
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves connections until `cfg.max_jobs` jobs have been accepted
    /// (forever when `None`), then drains the queue, joins the workers,
    /// and returns the counters.
    ///
    /// # Errors
    ///
    /// Fatal listener errors pass through; per-connection I/O errors
    /// (client gone, malformed frame) are absorbed into the counters.
    pub fn run(&self, cfg: &ServerConfig) -> io::Result<ServerStats> {
        let queue = Queue::new(cfg.queue_capacity.max(1));
        let workers = cfg.workers.max(1);
        let mut stats = ServerStats::default();
        let completed = Mutex::new(0u64);

        std::thread::scope(|scope| -> io::Result<()> {
            for _ in 0..workers {
                scope.spawn(|| {
                    while let Some(job) = queue.pop() {
                        let done = run_job(job);
                        *completed.lock().expect("completed lock") += done;
                    }
                });
            }

            let mut next_job: u64 = 0;
            for conn in self.listener.incoming() {
                let stream = match conn {
                    Ok(s) => s,
                    // Transient accept errors (e.g. a connection reset
                    // before accept) should not take the server down.
                    Err(e) if e.kind() == io::ErrorKind::ConnectionAborted => continue,
                    Err(e) => {
                        queue.close();
                        return Err(e);
                    }
                };
                match admit(stream, next_job, &queue) {
                    Admission::Accepted => {
                        next_job += 1;
                        stats.accepted += 1;
                    }
                    Admission::Rejected => stats.rejected += 1,
                    Admission::Dropped => {}
                }
                if cfg.max_jobs.is_some_and(|max| stats.accepted >= max) {
                    break;
                }
            }
            queue.close();
            Ok(())
        })?;

        stats.completed = *completed.lock().expect("completed lock");
        Ok(stats)
    }
}

/// What became of one incoming connection at admission time.
enum Admission {
    /// Job queued; `Accepted` frame sent.
    Accepted,
    /// `Reject` frame sent (or attempted) with a reason.
    Rejected,
    /// Connection unusable (timeout, framing error, client gone) —
    /// nothing was admitted and no reject could be delivered.
    Dropped,
}

/// Reads one `Submit` frame off a fresh connection and either queues
/// the job (streaming `Accepted`) or answers `Reject` with a reason.
fn admit(mut stream: TcpStream, id: u64, queue: &Queue<Job>) -> Admission {
    // A stalled or hostile client must not wedge the acceptor.
    if stream.set_read_timeout(Some(SUBMIT_READ_TIMEOUT)).is_err() {
        return Admission::Dropped;
    }
    let request = match read_frame(&mut stream) {
        Ok(Message::Submit(req)) => req,
        Ok(_) => return reject(stream, "expected a Submit frame to open the connection"),
        Err(e) if e.kind() == io::ErrorKind::InvalidData => {
            return reject(stream, &format!("malformed frame: {e}"));
        }
        Err(_) => return Admission::Dropped,
    };
    if request.cache == CachePolicy::MemoryOnly {
        return reject(
            stream,
            "MemoryOnly cache policy is not admissible: the server's resident store is \
             process-wide (run locally with `repro --no-cache` instead)",
        );
    }
    // Catch unknown experiment ids before the job occupies a queue slot.
    if let Err(e) = request.resolve() {
        return reject(stream, &e.to_string());
    }
    let Some(depth) = queue.depth_if_free() else {
        return reject(stream, "admission queue full; retry later");
    };
    // Stream the status frame now, then hand the connection to a
    // worker for the Result frame.
    if write_frame(&mut stream, &Message::Accepted { job: id, queued: depth }).is_err() {
        return Admission::Dropped;
    }
    queue.push(Job { id, request, stream });
    Admission::Accepted
}

/// Sends a `Reject` frame (best effort) and reports the refusal.
fn reject(mut stream: TcpStream, reason: &str) -> Admission {
    let _ = write_frame(&mut stream, &Message::Reject { reason: reason.to_string() });
    Admission::Rejected
}

/// Runs one admitted job and streams its `Result` (or failure `Reject`)
/// frame. Returns 1 when a `Result` frame was delivered, else 0.
fn run_job(mut job: Job) -> u64 {
    match run_request(&job.request) {
        Ok(result) => {
            match write_frame(&mut job.stream, &Message::Result { job: job.id, result }) {
                Ok(()) => 1,
                Err(_) => 0, // client went away; the work still warmed the cache
            }
        }
        Err(e) => {
            let _ = write_frame(
                &mut job.stream,
                &Message::Reject { reason: format!("job {} failed: {e}", job.id) },
            );
            0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn queue_bound_refuses_when_full_and_depth_counts_waiters() {
        let q: Queue<u64> = Queue::new(2);
        assert_eq!(q.depth_if_free(), Some(0), "empty queue admits at depth 0");
        q.push(1);
        assert_eq!(q.depth_if_free(), Some(1), "one job ahead");
        q.push(2);
        assert_eq!(q.depth_if_free(), None, "at capacity: admission refused");
        assert_eq!(q.pop(), Some(1), "FIFO order");
        assert_eq!(q.depth_if_free(), Some(1), "slot freed by the pop");
    }

    #[test]
    fn closed_queue_drains_then_signals_exit() {
        let q: Queue<u64> = Queue::new(4);
        q.push(7);
        q.push(8);
        q.close();
        assert_eq!(q.pop(), Some(7), "close drains queued jobs first");
        assert_eq!(q.pop(), Some(8));
        assert_eq!(q.pop(), None, "then tells workers to exit");
    }

    #[test]
    fn close_wakes_a_blocked_worker() {
        let q: Queue<u64> = Queue::new(1);
        std::thread::scope(|scope| {
            let waiter = scope.spawn(|| q.pop());
            q.close();
            assert_eq!(waiter.join().expect("worker thread"), None);
        });
    }

    #[test]
    fn default_config_is_single_worker_for_exact_per_job_counters() {
        let cfg = ServerConfig::default();
        assert_eq!(cfg.workers, 1);
        assert!(cfg.queue_capacity >= 1);
        assert_eq!(cfg.max_jobs, None);
    }
}
