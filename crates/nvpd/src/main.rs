//! The `nvpd` command: serve campaigns, or submit one to a server.
//!
//! `nvpd serve` binds the daemon and runs jobs until stopped (or until
//! `--max-jobs`); `nvpd submit` is the same thin client `repro
//! --connect` uses, sharing the `repro` run grammar for its arguments.

use std::path::PathBuf;
use std::process::ExitCode;

use nvp_experiments::cli::{self, Command};
use nvp_experiments::{client, set_cache_dir};
use nvpd::{Server, ServerConfig};

/// Command-line reference, printed by `--help` and on usage errors.
const USAGE: &str = "\
nvpd — resident NVP campaign server

USAGE:
    nvpd serve [ADDR] [OPTIONS]
    nvpd submit ADDR [OUT_DIR] [--quick] [--only IDS] [--seed N]
    nvpd --help

serve options (ADDR defaults to 127.0.0.1:7117; use port 0 for an
ephemeral port and read it back via --port-file):
    --state-dir DIR    durable server state at DIR: the write-ahead job
                       journal plus a content-addressed result store.
                       Admitted jobs survive a crash and resume on
                       restart; completed resubmissions replay without
                       re-simulation. Implies `--cache-dir DIR/simcache`
                       unless --cache-dir is given explicitly.
    --cache-dir DIR    attach the persistent simulation store at DIR
                       (default: in-memory only, or NVP_CACHE_DIR)
    --queue N          admission queue capacity (default 64)
    --workers N        concurrent jobs (default 1, which keeps each
                       job's cache/scheduler counter deltas exact)
    --max-jobs N       accept N jobs, drain the queue, then exit
    --port-file PATH   write the bound address to PATH once listening
    --fault-spec SPEC  inject seeded service faults (testing only; also
                       read from NVPD_FAULT_SPEC). Grammar:
                       crash-append=N,tear=B,drop-result=B,delay-ms=N

submit takes the `repro` run grammar after ADDR (plus --timeout SECS
and --retries N) and writes the returned artifacts to OUT_DIR (default
`out`): byte-identical to a local run.";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let result = match args.first().map(String::as_str) {
        Some("serve") => serve(&args[1..]),
        Some("submit") => submit(&args[1..]),
        _ => Err("expected a subcommand: `serve` or `submit`".to_string()),
    };
    match result {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("error: {msg}\n\n{USAGE}");
            ExitCode::from(2)
        }
    }
}

/// Parsed `nvpd serve` options.
struct ServeArgs {
    addr: String,
    cache_dir: Option<PathBuf>,
    port_file: Option<PathBuf>,
    config: ServerConfig,
}

fn parse_serve(args: &[String]) -> Result<ServeArgs, String> {
    let mut out = ServeArgs {
        addr: "127.0.0.1:7117".to_string(),
        cache_dir: None,
        port_file: None,
        config: ServerConfig::default(),
    };
    let mut saw_addr = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("{name} requires a value"));
        match arg.as_str() {
            "--cache-dir" => out.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--state-dir" => out.config.state_dir = Some(PathBuf::from(value("--state-dir")?)),
            "--fault-spec" => {
                out.config.faults =
                    nvpd::faultplan::ServiceFaultPlan::parse(&value("--fault-spec")?)?;
            }
            "--port-file" => out.port_file = Some(PathBuf::from(value("--port-file")?)),
            "--queue" => out.config.queue_capacity = parse_num(&value("--queue")?, "--queue")?,
            "--workers" => out.config.workers = parse_num(&value("--workers")?, "--workers")?,
            "--max-jobs" => {
                out.config.max_jobs = Some(parse_num(&value("--max-jobs")?, "--max-jobs")?);
            }
            flag if flag.starts_with('-') => return Err(format!("unknown flag `{flag}`")),
            addr if !saw_addr => {
                if !addr.contains(':') {
                    return Err(format!("`{addr}` is not a bind address (need host:port)"));
                }
                out.addr = addr.to_string();
                saw_addr = true;
            }
            extra => return Err(format!("unexpected argument `{extra}`")),
        }
    }
    if out.config.queue_capacity == 0 {
        return Err("--queue must be at least 1".to_string());
    }
    if out.config.workers == 0 {
        return Err("--workers must be at least 1".to_string());
    }
    Ok(out)
}

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> Result<T, String> {
    s.parse().map_err(|_| format!("{flag}: `{s}` is not a valid number"))
}

fn serve(args: &[String]) -> Result<ExitCode, String> {
    let mut opts = parse_serve(args)?;
    // The crash-recovery suite steers child servers through the
    // environment so the command line stays clean in process tables.
    if !opts.config.faults.enabled() {
        if let Ok(spec) = std::env::var("NVPD_FAULT_SPEC") {
            opts.config.faults = nvpd::faultplan::ServiceFaultPlan::parse(&spec)?;
        }
    }
    // A stateful server without an explicit cache dir keeps its
    // simulation store next to the journal, so one --state-dir makes
    // the whole server durable.
    if opts.cache_dir.is_none() {
        if let Some(state) = &opts.config.state_dir {
            opts.cache_dir = Some(state.join("simcache"));
        }
    }
    if let Some(dir) = &opts.cache_dir {
        set_cache_dir(Some(dir))
            .map_err(|e| format!("cannot attach cache at {}: {e}", dir.display()))?;
    }
    let server = Server::bind(&opts.addr).map_err(|e| format!("bind {}: {e}", opts.addr))?;
    let bound = server.local_addr().map_err(|e| e.to_string())?;
    if let Some(path) = &opts.port_file {
        std::fs::write(path, bound.to_string())
            .map_err(|e| format!("cannot write port file {}: {e}", path.display()))?;
    }
    eprintln!("nvpd: listening on {bound}");
    let stats = server.run(&opts.config).map_err(|e| format!("server failed: {e}"))?;
    eprintln!(
        "nvpd: done — {} accepted, {} completed, {} rejected, {} recovered from journal, \
         {} replayed from result store, {} file(s) quarantined",
        stats.accepted,
        stats.completed,
        stats.rejected,
        stats.recovered,
        stats.replayed,
        stats.quarantined
    );
    Ok(ExitCode::SUCCESS)
}

fn submit(args: &[String]) -> Result<ExitCode, String> {
    let Some((addr, rest)) = args.split_first() else {
        return Err("submit requires a server address".to_string());
    };
    if !addr.contains(':') {
        return Err(format!("`{addr}` is not a server address (need host:port)"));
    }
    // Reuse the repro run grammar (and its validation) for what to run.
    let cmd = cli::parse(rest)?;
    let Command::Run { out_dir, only, quick, seed, no_cache, connect, timeout, retries } = cmd
    else {
        return Err(
            "submit only takes run arguments (OUT_DIR, --quick, --only, --seed)".to_string()
        );
    };
    if connect.is_some() {
        return Err("--connect is implied by submit; pass the address positionally".to_string());
    }
    if no_cache {
        return Err("--no-cache is not admissible remotely: the server owns its store".to_string());
    }
    let mut request = nvp_experiments::CampaignRequest::all(Command::config(quick));
    request.only = only;
    request.seed = seed;
    let mut config = client::ClientConfig::default();
    if let Some(secs) = timeout {
        config.timeout = std::time::Duration::from_secs_f64(secs);
    }
    if let Some(n) = retries {
        config.retries = n;
    }
    eprintln!("submitting campaign to nvpd at {addr} ...");
    let outcome = client::submit_with(addr, &request, &config).map_err(|e| e.to_string())?;
    let files = outcome.result.write(&out_dir).map_err(|e| e.to_string())?;
    for t in &outcome.result.tables {
        println!("{}", t.to_markdown());
    }
    eprintln!(
        "nvpd job {} (queue depth {} at admission{}): {} unique simulations, {} deduplicated, \
         {} served from the server's disk store, {} shard(s) quarantined",
        outcome.job,
        outcome.queued,
        if outcome.replayed { "; replayed from journal" } else { "" },
        outcome.result.cache.misses,
        outcome.result.cache.hits,
        outcome.result.cache.disk_hits,
        outcome.result.cache.quarantined
    );
    eprintln!("wrote {} files to {}", files.len(), out_dir.display());
    Ok(ExitCode::SUCCESS)
}
