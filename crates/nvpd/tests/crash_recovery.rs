//! Crash-recovery proof: real `nvpd` child processes are killed at
//! seeded crash points — torn journal appends, clean aborts at each
//! journal transition, mid-frame connection drops, and external
//! `SIGKILL` mid-job — then restarted on the same `--state-dir`. Every
//! scenario must end with artifacts byte-identical to an uninterrupted
//! in-process run, and the write-ahead promise must hold: once a client
//! has seen `Accepted`, the eventual answer comes from the durable
//! result store (`replayed: true`) with zero extra unique simulations.
//!
//! The fault points come from [`nvpd::faultplan::derive`], the same
//! seeded-plan discipline the simulator's own `FaultPlan` uses; specs
//! travel to the child over `--fault-spec` (and, for one scenario, the
//! `NVPD_FAULT_SPEC` environment variable).

use std::collections::BTreeMap;
use std::fs;
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::thread;
use std::time::Duration;

use nvp_experiments::wire::{read_frame, write_frame, Message};
use nvp_experiments::{
    client, reset_sim_cache, run_request, set_cache_dir, CampaignRequest, ExpConfig,
};
use nvpd::faultplan::{self, CRASH_EXIT_CODE};

/// The in-process golden runs touch the process-global simulation
/// cache; serialize them so parallel tests don't interleave counters.
fn cache_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("nvpd_crash_{tag}_{}_{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// The campaign every scenario runs: real (cached) simulations, so a
/// lost-then-recovered job has genuine work to lose.
fn request() -> CampaignRequest {
    let mut req = CampaignRequest::only(ExpConfig::quick(), &["f3"]);
    req.seed = Some(23);
    req
}

/// Reads every regular file in `dir` into a name → bytes map.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("read_dir") {
        let entry = entry.expect("dir entry");
        if entry.file_type().expect("file type").is_file() {
            let name = entry.file_name().to_string_lossy().into_owned();
            out.insert(name, fs::read(entry.path()).expect("read file"));
        }
    }
    out
}

/// A child `nvpd serve` process plus the address it bound.
struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Spawns `nvpd serve` on an ephemeral port with the given state
    /// dir, fault spec, and job budget, and waits for its port file.
    fn spawn(
        state_dir: &Path,
        fault_spec: Option<&str>,
        max_jobs: u64,
        spec_via_env: bool,
    ) -> Server {
        let port_file = state_dir.join("port.txt");
        let _ = fs::remove_file(&port_file);
        fs::create_dir_all(state_dir).expect("state dir");
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_nvpd"));
        cmd.arg("serve")
            .arg("127.0.0.1:0")
            .arg("--state-dir")
            .arg(state_dir)
            .arg("--port-file")
            .arg(&port_file)
            .arg("--max-jobs")
            .arg(max_jobs.to_string())
            .env_remove("NVP_CACHE_DIR")
            .env_remove("NVPD_FAULT_SPEC")
            .stdout(Stdio::null())
            .stderr(Stdio::null());
        if let Some(spec) = fault_spec {
            if spec_via_env {
                cmd.env("NVPD_FAULT_SPEC", spec);
            } else {
                cmd.arg("--fault-spec").arg(spec);
            }
        }
        let child = cmd.spawn().expect("spawn nvpd");
        // Bounded wait for the port file — the child writes it only
        // once the listener is live.
        let mut addr = None;
        for _ in 0..400 {
            if let Ok(text) = fs::read_to_string(&port_file) {
                if text.contains(':') {
                    addr = Some(text.trim().to_string());
                    break;
                }
            }
            thread::sleep(Duration::from_millis(25));
        }
        let addr = addr.expect("child never wrote its port file");
        Server { child, addr }
    }

    /// Polls the child briefly: `Some(code)` if it exited, `None` if it
    /// is still running after the window.
    fn exit_code_within(&mut self, window: Duration) -> Option<i32> {
        let deadline = window.as_millis() / 25;
        for _ in 0..=deadline {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                return status.code();
            }
            thread::sleep(Duration::from_millis(25));
        }
        None
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.kill();
    }
}

/// Drives the submit protocol by hand so the test knows exactly how far
/// the handshake got before the injected fault tore it down.
struct Attempt {
    accepted: bool,
    completed: bool,
}

fn raw_attempt(addr: &str, req: &CampaignRequest) -> Attempt {
    let mut out = Attempt { accepted: false, completed: false };
    let Ok(mut stream) = TcpStream::connect(addr) else { return out };
    // Generous bound: the job itself runs real simulations before the
    // fault point may fire.
    stream.set_read_timeout(Some(Duration::from_secs(120))).expect("read timeout");
    if write_frame(&mut stream, &Message::Submit(req.clone())).is_err() {
        return out;
    }
    match read_frame(&mut stream) {
        Ok(Message::Accepted { .. }) => out.accepted = true,
        _ => return out,
    }
    if let Ok(Message::Result { .. }) = read_frame(&mut stream) {
        out.completed = true;
    }
    out
}

/// One full crash-and-recover round trip for a fault spec. Returns the
/// final outcome plus what the first (faulted) attempt observed.
fn round_trip(
    tag: &str,
    spec: &str,
    spec_via_env: bool,
    golden: &BTreeMap<String, Vec<u8>>,
    golden_misses: u64,
) {
    let state_dir = scratch(tag);
    let req = request();

    // Server A runs with the fault armed. Budget 2 jobs: the faulted
    // attempt plus (if A survives, e.g. a mid-frame drop) the retry.
    let mut a = Server::spawn(&state_dir, Some(spec), 2, spec_via_env);
    let attempt = raw_attempt(&a.addr, &req);
    assert!(!attempt.completed, "[{tag}] fault plan `{spec}` failed to disturb the first attempt");

    // A crash-append fault kills A with the sentinel exit code; a
    // connection-drop fault leaves it serving.
    let outcome = match a.exit_code_within(Duration::from_secs(5)) {
        Some(code) => {
            assert_eq!(
                code, CRASH_EXIT_CODE,
                "[{tag}] expected an injected crash, got exit {code}"
            );
            // Restart on the same state dir, fault disarmed: the journal
            // replays, then the client resubmits.
            let b = Server::spawn(&state_dir, None, 1, false);
            let out = client::submit(&b.addr, &req)
                .unwrap_or_else(|e| panic!("[{tag}] resubmission after restart failed: {e}"));
            out
        }
        None => client::submit(&a.addr, &req)
            .unwrap_or_else(|e| panic!("[{tag}] retry against the surviving server failed: {e}")),
    };

    // Byte-identical artifacts against the uninterrupted golden run.
    let out_dir = scratch(&format!("{tag}_out"));
    outcome.result.write(&out_dir).expect("write artifacts");
    let got = dir_bytes(&out_dir);
    assert_eq!(
        golden.keys().collect::<Vec<_>>(),
        got.keys().collect::<Vec<_>>(),
        "[{tag}] artifact set differs from the uninterrupted run"
    );
    for (name, bytes) in golden {
        assert_eq!(bytes, &got[name], "[{tag}] {name} differs from the uninterrupted run");
    }

    // The write-ahead promise: once `Accepted` was seen, the admission
    // was durable, so the answer must come from the result store — no
    // re-simulation. Only a fault that struck *before* the promise
    // (e.g. a torn `Admitted` append) may leave a fresh run, and a
    // fresh run costs exactly the golden number of simulations — never
    // more.
    if attempt.accepted {
        assert!(
            outcome.replayed || outcome.result.cache.misses == 0,
            "[{tag}] accepted job re-simulated after recovery: {:?}",
            outcome.result.cache
        );
    } else {
        assert!(
            outcome.replayed
                || outcome.result.cache.misses == 0
                || outcome.result.cache.misses == golden_misses,
            "[{tag}] unexpected simulation count {:?} (golden ran {golden_misses})",
            outcome.result.cache
        );
    }

    let _ = fs::remove_dir_all(&state_dir);
    let _ = fs::remove_dir_all(&out_dir);
}

#[test]
fn seeded_crash_points_all_recover_byte_identical() {
    // The golden, uninterrupted run — in-process, the strongest
    // baseline (remote + journal + crash must match local exactly).
    let req = request();
    let golden_result = {
        let _guard = cache_lock();
        reset_sim_cache();
        let _ = set_cache_dir(None);
        let result = run_request(&req).expect("golden run");
        reset_sim_cache();
        result
    };
    let golden_dir = scratch("golden");
    golden_result.write(&golden_dir).expect("write golden artifacts");
    let golden = dir_bytes(&golden_dir);
    let golden_misses = golden_result.cache.misses;
    assert!(golden_misses > 0, "the campaign must run real simulations to prove dedup");

    // Two handcrafted specs pin the boundary cases regardless of what
    // the seed rotation lands on ...
    round_trip("tear_admitted", "crash-append=1,tear=0", false, &golden, golden_misses);
    round_trip("after_completed", "crash-append=3", false, &golden, golden_misses);
    // ... one scenario exercises the NVPD_FAULT_SPEC transport ...
    round_trip("env_spec", "crash-append=2", true, &golden, golden_misses);
    // ... and the seeded rotation covers ≥20 derived crash points:
    // torn appends at varied offsets, aborts at each journal
    // transition, and mid-frame result drops.
    let mut specs = std::collections::BTreeSet::new();
    for seed in 0..20u64 {
        let spec = faultplan::derive(seed).format();
        specs.insert(spec.clone());
        round_trip(&format!("seed{seed}"), &spec, false, &golden, golden_misses);
    }
    assert!(specs.len() >= 10, "seed rotation collapsed: {specs:?}");

    let _ = fs::remove_dir_all(&golden_dir);
}

#[test]
fn external_sigkill_mid_job_recovers_byte_identical() {
    let req = request();
    let golden_result = {
        let _guard = cache_lock();
        reset_sim_cache();
        let _ = set_cache_dir(None);
        let result = run_request(&req).expect("golden run");
        reset_sim_cache();
        result
    };
    let golden_dir = scratch("kill_golden");
    golden_result.write(&golden_dir).expect("write golden artifacts");
    let golden = dir_bytes(&golden_dir);

    for round in 0..2 {
        let tag = format!("sigkill{round}");
        let state_dir = scratch(&tag);
        // The delay widens the admitted-but-running window the kill
        // lands in; the attempt runs on its own thread so the test can
        // pull the trigger while the client is still waiting.
        let mut a = Server::spawn(&state_dir, Some("delay-ms=1500"), 1, false);
        let addr = a.addr.clone();
        let req_clone = req.clone();
        let attempt = thread::spawn(move || raw_attempt(&addr, &req_clone));
        // Give admission time to journal the job and send `Accepted`,
        // then kill -9 the server inside the delayed job window.
        thread::sleep(Duration::from_millis(600));
        a.kill();
        let attempt = attempt.join().expect("attempt thread");
        assert!(attempt.accepted, "[{tag}] the job was admitted before the kill");
        assert!(!attempt.completed, "[{tag}] the kill landed before completion");

        // Restart on the same state dir: the journal must replay the
        // admitted job, and the resubmission must be a replay.
        let b = Server::spawn(&state_dir, None, 1, false);
        let outcome = client::submit(&b.addr, &req)
            .unwrap_or_else(|e| panic!("[{tag}] resubmission after SIGKILL failed: {e}"));
        assert!(
            outcome.replayed || outcome.result.cache.misses == 0,
            "[{tag}] SIGKILLed job re-simulated after recovery: {:?}",
            outcome.result.cache
        );
        let out_dir = scratch(&format!("{tag}_out"));
        outcome.result.write(&out_dir).expect("write artifacts");
        let got = dir_bytes(&out_dir);
        for (name, bytes) in &golden {
            assert_eq!(bytes, &got[name], "[{tag}] {name} differs from the uninterrupted run");
        }
        let _ = fs::remove_dir_all(&state_dir);
        let _ = fs::remove_dir_all(&out_dir);
    }
    let _ = fs::remove_dir_all(&golden_dir);
}

/// The satellite fix pinned end-to-end: a server that accepts the TCP
/// connection but never answers (or is simply absent) must not hang the
/// client — it times out, reports "server unreachable", and gives up
/// after its bounded retries.
#[test]
fn absent_server_fails_fast_with_unreachable() {
    let err = client::submit_with(
        "127.0.0.1:9", // discard port: nothing listens there
        &request(),
        &client::ClientConfig {
            timeout: Duration::from_millis(300),
            retries: 1,
            ..client::ClientConfig::default()
        },
    )
    .expect_err("no server must mean no hang");
    assert!(matches!(err, client::ClientError::Unreachable { .. }), "{err}");
    assert!(err.to_string().contains("server unreachable at"), "{err}");
}
