//! Loopback tests: a real `nvpd` server on 127.0.0.1 driven by the real
//! client, pinning the acceptance criteria — over-the-wire artifacts
//! byte-identical to in-process runs, duplicate submissions deduped
//! through the shared cache, and admission control rejecting what it
//! must without taking the server down.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::thread;

use nvp_experiments::wire::{read_frame, write_frame, Message};
use nvp_experiments::{
    client, reset_sim_cache, run_request, set_cache_dir, CachePolicy, CampaignRequest, ExpConfig,
};
use nvpd::{Server, ServerConfig, ServerStats};

/// The simulation cache is process-global; serialize every test that
/// runs jobs so counters and store state don't interleave.
fn cache_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// A fresh per-test scratch directory under the system temp dir.
fn scratch(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("nvpd_{tag}_{}_{n}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Binds a server on an ephemeral loopback port and runs it on its own
/// thread; `max_jobs` must be set in `cfg` so the thread terminates.
fn start_server(cfg: ServerConfig) -> (SocketAddr, thread::JoinHandle<io::Result<ServerStats>>) {
    assert!(cfg.max_jobs.is_some(), "test servers must have a shutdown point");
    let server = Server::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server.local_addr().expect("bound address");
    let handle = thread::spawn(move || server.run(&cfg));
    (addr, handle)
}

/// Reads every regular file in `dir` into a name → bytes map.
fn dir_bytes(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir).expect("read_dir") {
        let entry = entry.expect("dir entry");
        if entry.file_type().expect("file type").is_file() {
            let name = entry.file_name().to_string_lossy().into_owned();
            out.insert(name, fs::read(entry.path()).expect("read file"));
        }
    }
    out
}

#[test]
fn wire_and_in_process_runs_render_byte_identical_artifacts() {
    let _guard = cache_lock();
    reset_sim_cache();
    let _ = set_cache_dir(None);

    // The full quick campaign — the same artifact set the golden
    // digests pin — through both transports.
    let request = CampaignRequest::all(ExpConfig::quick());
    let local_dir = scratch("local");
    let local = run_request(&request).expect("in-process run");
    local.write(&local_dir).expect("write local artifacts");

    let (addr, handle) =
        start_server(ServerConfig { max_jobs: Some(1), ..ServerConfig::default() });
    let remote_dir = scratch("remote");
    let outcome = client::submit(&addr.to_string(), &request).expect("remote run");
    outcome.result.write(&remote_dir).expect("write remote artifacts");

    let stats = handle.join().expect("server thread").expect("server run");
    assert_eq!((stats.accepted, stats.completed, stats.rejected), (1, 1, 0));

    let local_files = dir_bytes(&local_dir);
    let remote_files = dir_bytes(&remote_dir);
    assert_eq!(
        local_files.keys().collect::<Vec<_>>(),
        remote_files.keys().collect::<Vec<_>>(),
        "same artifact set through both transports"
    );
    for (name, bytes) in &local_files {
        assert_eq!(bytes, &remote_files[name], "{name} differs across transports");
    }

    reset_sim_cache();
    let _ = fs::remove_dir_all(&local_dir);
    let _ = fs::remove_dir_all(&remote_dir);
}

#[test]
fn concurrent_duplicate_submissions_dedup_through_the_shared_store() {
    let _guard = cache_lock();
    reset_sim_cache();
    let cache_dir = scratch("cache");
    set_cache_dir(Some(&cache_dir)).expect("attach persistent store");

    // f3 runs real (cached) simulations; f2/f12 are pure trace
    // statistics and would never touch the store.
    let mut request = CampaignRequest::only(ExpConfig::quick(), &["f3"]);
    request.seed = Some(7);

    let (addr, handle) =
        start_server(ServerConfig { max_jobs: Some(2), ..ServerConfig::default() });
    let (first, second) = thread::scope(|scope| {
        let a = scope.spawn(|| client::submit(&addr.to_string(), &request));
        let b = scope.spawn(|| client::submit(&addr.to_string(), &request));
        (a.join().expect("client a"), b.join().expect("client b"))
    });
    let first = first.expect("first submission");
    let second = second.expect("second submission");
    let stats = handle.join().expect("server thread").expect("server run");
    assert_eq!((stats.accepted, stats.completed, stats.rejected), (2, 2, 0));

    // Identical values back on both connections...
    assert_eq!(first.result.tables, second.result.tables);
    assert_eq!(first.result.results_markdown(), second.result.results_markdown());
    // ...and (single-worker server, so per-job deltas are exact) every
    // simulation ran exactly once: whichever job went second was served
    // entirely from the resident cache.
    let (cold, warm) = if first.result.cache.misses >= second.result.cache.misses {
        (&first.result.cache, &second.result.cache)
    } else {
        (&second.result.cache, &first.result.cache)
    };
    assert!(cold.misses > 0, "the cold job simulates");
    assert_eq!(warm.misses, 0, "the duplicate job runs zero new simulations");
    assert!(warm.hits > 0, "the duplicate job is served from the shared store");

    reset_sim_cache();
    let _ = set_cache_dir(None);
    let _ = fs::remove_dir_all(&cache_dir);
}

#[test]
fn admission_control_rejects_without_taking_the_server_down() {
    let _guard = cache_lock();
    reset_sim_cache();
    let _ = set_cache_dir(None);

    let (addr, handle) =
        start_server(ServerConfig { max_jobs: Some(1), ..ServerConfig::default() });
    let addr = addr.to_string();

    // A MemoryOnly job is refused at admission: the daemon's store is
    // process-wide and cannot be bypassed per job.
    let mut memory_only = CampaignRequest::only(ExpConfig::quick(), &["t1"]);
    memory_only.cache = CachePolicy::MemoryOnly;
    let err = client::submit(&addr, &memory_only).expect_err("MemoryOnly must be rejected");
    assert!(err.to_string().contains("MemoryOnly"), "{err}");

    // Unknown experiment ids are caught before the job takes a slot.
    let bogus = CampaignRequest::only(ExpConfig::quick(), &["f99"]);
    let err = client::submit(&addr, &bogus).expect_err("unknown id must be rejected");
    assert!(err.to_string().contains("unknown experiment id"), "{err}");

    // The server is still healthy: a valid job completes afterwards.
    let ok = CampaignRequest::only(ExpConfig::quick(), &["t1"]);
    let outcome = client::submit(&addr, &ok).expect("valid job after rejects");
    assert_eq!(outcome.result.tables.len(), 1);

    let stats = handle.join().expect("server thread").expect("server run");
    assert_eq!((stats.accepted, stats.completed, stats.rejected), (1, 1, 2));
    reset_sim_cache();
}

#[test]
fn malformed_and_out_of_order_frames_draw_a_reject_frame() {
    let _guard = cache_lock();
    reset_sim_cache();
    let _ = set_cache_dir(None);

    let (addr, handle) =
        start_server(ServerConfig { max_jobs: Some(1), ..ServerConfig::default() });
    let addr = addr.to_string();

    // A syntactically valid frame that is not a Submit.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    write_frame(&mut stream, &Message::Accepted { job: 9, queued: 0 }).expect("send frame");
    match read_frame(&mut stream).expect("reject frame") {
        Message::Reject { reason, retryable } => {
            assert!(reason.contains("Submit"), "{reason}");
            assert!(!retryable, "a protocol violation is not retryable");
        }
        other => panic!("expected Reject, got {other:?}"),
    }

    // Garbage bytes with a plausible header shape: rejected as a
    // malformed frame, connection answered rather than wedged.
    let mut stream = TcpStream::connect(&addr).expect("connect");
    {
        use io::Write;
        // len=4, bogus crc, 4 payload bytes.
        stream.write_all(&[4, 0, 0, 0, 0xde, 0xad, 0xbe, 0xef, 1, 2, 3, 4]).expect("send bytes");
    }
    match read_frame(&mut stream).expect("reject frame") {
        Message::Reject { reason, retryable } => {
            assert!(reason.contains("malformed"), "{reason}");
            assert!(!retryable, "a malformed frame is not retryable");
        }
        other => panic!("expected Reject, got {other:?}"),
    }

    // And the server still serves real work.
    let ok = CampaignRequest::only(ExpConfig::quick(), &["t1"]);
    client::submit(&addr, &ok).expect("valid job after malformed frames");
    let stats = handle.join().expect("server thread").expect("server run");
    assert_eq!((stats.accepted, stats.completed, stats.rejected), (1, 1, 2));
    reset_sim_cache();
}

#[test]
fn slow_loris_submit_times_out_without_wedging_admission() {
    let _guard = cache_lock();
    reset_sim_cache();
    let _ = set_cache_dir(None);

    // A short submit window so the test stays fast; real deployments
    // keep the 30 s default.
    let cfg = ServerConfig {
        max_jobs: Some(1),
        submit_timeout: std::time::Duration::from_millis(250),
        ..ServerConfig::default()
    };
    let (addr, handle) = start_server(cfg);
    let addr = addr.to_string();

    // The slow loris: opens a connection, dribbles half a frame header,
    // and then stalls forever. Keep the socket alive for the whole test.
    let mut loris = TcpStream::connect(&addr).expect("connect loris");
    {
        use io::Write;
        loris.write_all(&[12, 0]).expect("partial header");
        loris.flush().expect("flush");
    }

    // A well-behaved client right behind it must still be served: the
    // acceptor's read timeout trips, the stalled connection is dropped,
    // and admission moves on.
    let ok = CampaignRequest::only(ExpConfig::quick(), &["t1"]);
    let outcome = client::submit(&addr, &ok).expect("valid job behind a stalled client");
    assert_eq!(outcome.result.tables.len(), 1);

    let stats = handle.join().expect("server thread").expect("server run");
    // The loris is Dropped — neither accepted nor rejected.
    assert_eq!((stats.accepted, stats.completed, stats.rejected), (1, 1, 0));
    drop(loris);
    reset_sim_cache();
}

#[test]
fn journal_replays_pending_jobs_after_a_crash() {
    let _guard = cache_lock();
    reset_sim_cache();
    let _ = set_cache_dir(None);
    let state_dir = scratch("state");

    // Simulate the moment after a crash: a journal holding one job that
    // was admitted (durably promised) but never completed.
    let mut request = CampaignRequest::only(ExpConfig::quick(), &["t1"]);
    request.seed = Some(3);
    let key = nvp_experiments::wire::request_key(&request);
    {
        let (journal, recovery) =
            nvpd::journal::Journal::open(&state_dir, nvpd::faultplan::ServiceFaultPlan::none())
                .expect("open journal");
        assert_eq!(recovery.pending.len(), 0);
        journal.admitted(0, &key, &request).expect("journal the admission");
        // Process "crashes" here: the journal is simply dropped.
    }

    // The restarted server replays the journal, runs the orphaned job
    // (warming the result store), and answers our resubmission of the
    // same request from that store: zero new simulations, flagged as a
    // journal replay on the wire.
    let cfg = ServerConfig {
        max_jobs: Some(1),
        state_dir: Some(state_dir.clone()),
        ..ServerConfig::default()
    };
    let (addr, handle) = start_server(cfg);
    let outcome = client::submit(&addr.to_string(), &request).expect("resubmission");
    assert!(outcome.replayed, "resubmission is served from the durable result store");

    let stats = handle.join().expect("server thread").expect("server run");
    assert_eq!(stats.recovered, 1, "the admitted-but-unfinished job was re-enqueued");
    assert_eq!(stats.replayed, 1, "the resubmission hit the idempotency key");
    assert_eq!((stats.accepted, stats.completed), (1, 1));
    assert_eq!(stats.quarantined, 0);

    reset_sim_cache();
    let _ = fs::remove_dir_all(&state_dir);
}

#[test]
fn identical_resubmission_replays_without_resimulation() {
    let _guard = cache_lock();
    reset_sim_cache();
    let _ = set_cache_dir(None);
    let state_dir = scratch("idem");

    let mut request = CampaignRequest::only(ExpConfig::quick(), &["f3"]);
    request.seed = Some(11);
    let cfg = ServerConfig {
        max_jobs: Some(2),
        state_dir: Some(state_dir.clone()),
        ..ServerConfig::default()
    };
    let (addr, handle) = start_server(cfg);
    let addr = addr.to_string();

    let first = client::submit(&addr, &request).expect("first submission");
    assert!(!first.replayed, "a cold submission actually runs");
    assert!(first.result.cache.misses > 0);

    let second = client::submit(&addr, &request).expect("identical resubmission");
    assert!(second.replayed, "the duplicate is answered from the result store");
    // The replay is the *stored* result, byte-for-byte — including the
    // original run's counters (which is why dedup is asserted via the
    // `replayed` flag, not via `misses == 0`).
    assert_eq!(first.result.tables, second.result.tables);
    assert_eq!(first.result.cache, second.result.cache);
    assert_eq!(first.result.results_markdown(), second.result.results_markdown());

    let stats = handle.join().expect("server thread").expect("server run");
    assert_eq!((stats.accepted, stats.completed, stats.replayed), (2, 2, 1));

    reset_sim_cache();
    let _ = fs::remove_dir_all(&state_dir);
}
