//! Basic-block fused execution plans.
//!
//! At load time the predecoded image is partitioned into basic blocks
//! (leaders computed by `nvp_isa::blocks`), and each block's body is
//! lowered to a flat [`MicroOp`] list with pre-extracted register slots,
//! pre-converted immediates, and per-op cost. [`Machine::run_blocks`]
//! (`crate::Machine::run_blocks`) then executes a whole block against a
//! local register file without per-instruction dispatch, fetch bounds
//! checks, or per-step counter stores, applying the block's integer
//! accounting as fused adds at the terminator.
//!
//! Energy accounting stays *per-op, in program order*: f64 addition is
//! not associative, so the block engine performs exactly the same
//! sequence of `+=` operations as [`Machine::step`](crate::Machine::step)
//! to keep totals bit-identical.
//!
//! The superblock tier (`crate::Machine::run_superblocks`) stacks on
//! top: [`BlockTable::build_chains`] fuses hot block *chains* across
//! static branches and `jal` targets from warm-up profile counts, and
//! the engine dispatches whole chains with per-link side-exit guards
//! that fall back to the plain block tier.

use nvp_isa::blocks::branch_target;
use nvp_isa::{Inst, Reg};

use crate::machine::Decoded;

/// Register-file slot addressing for block execution: slots `0..=15`
/// mirror the architectural registers; slot 16 absorbs writes to `r0`
/// (which always reads as zero and is never written through `wslot`).
pub(crate) const DISCARD_SLOT: u8 = 16;

/// Number of local register-file slots ([`DISCARD_SLOT`] + 1).
pub(crate) const NUM_SLOTS: usize = 17;

#[inline]
fn rslot(r: Reg) -> u8 {
    r.index() as u8
}

#[inline]
fn wslot(r: Reg) -> u8 {
    if r.is_zero() {
        DISCARD_SLOT
    } else {
        r.index() as u8
    }
}

/// A lowered straight-line instruction: operand slots pre-extracted,
/// immediates pre-converted to their operational form.
#[derive(Debug, Clone, Copy)]
pub(crate) enum MicroKind {
    Add {
        d: u8,
        a: u8,
        b: u8,
    },
    Sub {
        d: u8,
        a: u8,
        b: u8,
    },
    And {
        d: u8,
        a: u8,
        b: u8,
    },
    Or {
        d: u8,
        a: u8,
        b: u8,
    },
    Xor {
        d: u8,
        a: u8,
        b: u8,
    },
    Sll {
        d: u8,
        a: u8,
        b: u8,
    },
    Srl {
        d: u8,
        a: u8,
        b: u8,
    },
    Sra {
        d: u8,
        a: u8,
        b: u8,
    },
    Mul {
        d: u8,
        a: u8,
        b: u8,
    },
    Mulh {
        d: u8,
        a: u8,
        b: u8,
    },
    Slt {
        d: u8,
        a: u8,
        b: u8,
    },
    Sltu {
        d: u8,
        a: u8,
        b: u8,
    },
    Divu {
        d: u8,
        a: u8,
        b: u8,
    },
    Remu {
        d: u8,
        a: u8,
        b: u8,
    },
    /// `imm` is the already-wrapped u16 addend (`imm as u16` of the i16).
    Addi {
        d: u8,
        a: u8,
        imm: u16,
    },
    Andi {
        d: u8,
        a: u8,
        imm: u16,
    },
    Ori {
        d: u8,
        a: u8,
        imm: u16,
    },
    Xori {
        d: u8,
        a: u8,
        imm: u16,
    },
    Slli {
        d: u8,
        a: u8,
        shamt: u8,
    },
    Srli {
        d: u8,
        a: u8,
        shamt: u8,
    },
    Srai {
        d: u8,
        a: u8,
        shamt: u8,
    },
    Slti {
        d: u8,
        a: u8,
        imm: i16,
    },
    Li {
        d: u8,
        imm: u16,
    },
    /// `offset` is the already-wrapped u16 displacement.
    Lw {
        d: u8,
        a: u8,
        offset: u16,
    },
    Sw {
        s: u8,
        a: u8,
        offset: u16,
    },
    Nop,
    /// `port` is the raw (unmasked) port byte, as logged by `step()`.
    Out {
        port: u8,
        s: u8,
    },
    /// `port` is pre-masked to `0..16`.
    In {
        d: u8,
        port: u8,
    },
}

/// One lowered body instruction plus its fixed cost.
#[derive(Debug, Clone, Copy)]
pub(crate) struct MicroOp {
    pub(crate) kind: MicroKind,
    pub(crate) cycles: u32,
    pub(crate) energy_j: f64,
    pub(crate) class_idx: u8,
}

impl MicroOp {
    /// Lowers a non-terminator instruction. Returns `None` for block
    /// terminators, which are encoded in [`Term`] instead.
    fn lower(d: &Decoded) -> Option<MicroOp> {
        use Inst::*;
        let kind = match d.inst {
            Add { rd, rs1, rs2 } => MicroKind::Add { d: wslot(rd), a: rslot(rs1), b: rslot(rs2) },
            Sub { rd, rs1, rs2 } => MicroKind::Sub { d: wslot(rd), a: rslot(rs1), b: rslot(rs2) },
            And { rd, rs1, rs2 } => MicroKind::And { d: wslot(rd), a: rslot(rs1), b: rslot(rs2) },
            Or { rd, rs1, rs2 } => MicroKind::Or { d: wslot(rd), a: rslot(rs1), b: rslot(rs2) },
            Xor { rd, rs1, rs2 } => MicroKind::Xor { d: wslot(rd), a: rslot(rs1), b: rslot(rs2) },
            Sll { rd, rs1, rs2 } => MicroKind::Sll { d: wslot(rd), a: rslot(rs1), b: rslot(rs2) },
            Srl { rd, rs1, rs2 } => MicroKind::Srl { d: wslot(rd), a: rslot(rs1), b: rslot(rs2) },
            Sra { rd, rs1, rs2 } => MicroKind::Sra { d: wslot(rd), a: rslot(rs1), b: rslot(rs2) },
            Mul { rd, rs1, rs2 } => MicroKind::Mul { d: wslot(rd), a: rslot(rs1), b: rslot(rs2) },
            Mulh { rd, rs1, rs2 } => MicroKind::Mulh { d: wslot(rd), a: rslot(rs1), b: rslot(rs2) },
            Slt { rd, rs1, rs2 } => MicroKind::Slt { d: wslot(rd), a: rslot(rs1), b: rslot(rs2) },
            Sltu { rd, rs1, rs2 } => MicroKind::Sltu { d: wslot(rd), a: rslot(rs1), b: rslot(rs2) },
            Divu { rd, rs1, rs2 } => MicroKind::Divu { d: wslot(rd), a: rslot(rs1), b: rslot(rs2) },
            Remu { rd, rs1, rs2 } => MicroKind::Remu { d: wslot(rd), a: rslot(rs1), b: rslot(rs2) },
            Addi { rd, rs1, imm } => {
                MicroKind::Addi { d: wslot(rd), a: rslot(rs1), imm: imm as u16 }
            }
            Andi { rd, rs1, imm } => MicroKind::Andi { d: wslot(rd), a: rslot(rs1), imm },
            Ori { rd, rs1, imm } => MicroKind::Ori { d: wslot(rd), a: rslot(rs1), imm },
            Xori { rd, rs1, imm } => MicroKind::Xori { d: wslot(rd), a: rslot(rs1), imm },
            Slli { rd, rs1, shamt } => MicroKind::Slli { d: wslot(rd), a: rslot(rs1), shamt },
            Srli { rd, rs1, shamt } => MicroKind::Srli { d: wslot(rd), a: rslot(rs1), shamt },
            Srai { rd, rs1, shamt } => MicroKind::Srai { d: wslot(rd), a: rslot(rs1), shamt },
            Slti { rd, rs1, imm } => MicroKind::Slti { d: wslot(rd), a: rslot(rs1), imm },
            Li { rd, imm } => MicroKind::Li { d: wslot(rd), imm },
            Lw { rd, rs1, offset } => {
                MicroKind::Lw { d: wslot(rd), a: rslot(rs1), offset: offset as u16 }
            }
            Sw { rs2, rs1, offset } => {
                MicroKind::Sw { s: rslot(rs2), a: rslot(rs1), offset: offset as u16 }
            }
            Nop => MicroKind::Nop,
            Out { port, rs1 } => MicroKind::Out { port, s: rslot(rs1) },
            In { rd, port } => MicroKind::In { d: wslot(rd), port: port & 0xF },
            Beq { .. }
            | Bne { .. }
            | Blt { .. }
            | Bge { .. }
            | Bltu { .. }
            | Bgeu { .. }
            | Jal { .. }
            | Jalr { .. }
            | Halt
            | Ckpt => return None,
        };
        Some(MicroOp {
            kind,
            cycles: d.cycles_not_taken,
            energy_j: d.energy_not_taken_j,
            class_idx: d.class.index() as u8,
        })
    }
}

/// Conditional-branch comparison operator.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Cond {
    Eq,
    Ne,
    Lt,
    Ge,
    Ltu,
    Geu,
}

/// How a basic block ends. All costs and targets that `step()` would
/// recompute are precomputed here; only data-dependent decisions
/// (branch direction, `jalr` target) remain for run time.
#[derive(Debug, Clone, Copy)]
pub(crate) enum Term {
    /// No terminator instruction: the next address is a leader, so the
    /// block simply continues there. Contributes zero cost.
    FallThrough {
        next: u32,
    },
    Branch {
        cond: Cond,
        a: u8,
        b: u8,
        taken_pc: u32,
        fall_pc: u32,
        cycles_nt: u32,
        cycles_t: u32,
        energy_nt_j: f64,
        energy_t_j: f64,
    },
    Jal {
        link_slot: u8,
        link_val: u16,
        target: u32,
        cycles: u32,
        energy_j: f64,
    },
    Jalr {
        link_slot: u8,
        link_val: u16,
        a: u8,
        offset: u16,
        cycles: u32,
        energy_j: f64,
    },
    Halt {
        cycles: u32,
        energy_j: f64,
    },
    Ckpt {
        next: u32,
        cycles: u32,
        energy_j: f64,
    },
}

/// One basic block's fused execution plan.
#[derive(Debug, Clone, Copy)]
pub(crate) struct BlockPlan {
    /// Leader address (word index of the first instruction).
    pub(crate) start: u32,
    /// Index of the first body op in [`BlockTable::ops`].
    pub(crate) op_start: u32,
    /// Number of body ops (one per straight-line instruction).
    pub(crate) op_len: u32,
    /// Retired-instruction count for a full execution of the block:
    /// body ops plus the terminator (fall-throughs count zero).
    pub(crate) insts: u64,
    /// Total cycles of the body ops (terminator excluded).
    pub(crate) body_cycles: u64,
    /// Per-[`InstClass`](crate::InstClass) body counts, fused-added on
    /// block completion.
    pub(crate) body_class_counts: [u64; 9],
    /// Class index of the terminator instruction (unused for
    /// fall-throughs).
    pub(crate) term_class: u8,
    pub(crate) term: Term,
}

/// The per-image block partition: one [`BlockPlan`] per leader plus the
/// flattened body-op pool and the leader → plan index map.
#[derive(Debug, Clone, Default)]
pub(crate) struct BlockTable {
    pub(crate) plans: Vec<BlockPlan>,
    pub(crate) ops: Vec<MicroOp>,
    /// `leader[pc]` is the plan index if `pc` is a leader, else
    /// [`NO_PLAN`].
    pub(crate) leader: Vec<u32>,
}

/// Sentinel for "this address is not a block leader".
pub(crate) const NO_PLAN: u32 = u32::MAX;

fn make_term(d: &Decoded, pc: u32) -> Term {
    use Inst::*;
    let branch = |cond, rs1: Reg, rs2: Reg, offset: i16| Term::Branch {
        cond,
        a: rslot(rs1),
        b: rslot(rs2),
        taken_pc: branch_target(pc, offset),
        fall_pc: pc + 1,
        cycles_nt: d.cycles_not_taken,
        cycles_t: d.cycles_taken,
        energy_nt_j: d.energy_not_taken_j,
        energy_t_j: d.energy_taken_j,
    };
    match d.inst {
        Beq { rs1, rs2, offset } => branch(Cond::Eq, rs1, rs2, offset),
        Bne { rs1, rs2, offset } => branch(Cond::Ne, rs1, rs2, offset),
        Blt { rs1, rs2, offset } => branch(Cond::Lt, rs1, rs2, offset),
        Bge { rs1, rs2, offset } => branch(Cond::Ge, rs1, rs2, offset),
        Bltu { rs1, rs2, offset } => branch(Cond::Ltu, rs1, rs2, offset),
        Bgeu { rs1, rs2, offset } => branch(Cond::Geu, rs1, rs2, offset),
        Jal { rd, target } => Term::Jal {
            link_slot: wslot(rd),
            link_val: (pc + 1) as u16,
            target,
            cycles: d.cycles_not_taken,
            energy_j: d.energy_not_taken_j,
        },
        Jalr { rd, rs1, offset } => Term::Jalr {
            link_slot: wslot(rd),
            link_val: (pc + 1) as u16,
            a: rslot(rs1),
            offset: offset as u16,
            cycles: d.cycles_not_taken,
            energy_j: d.energy_not_taken_j,
        },
        Halt => Term::Halt { cycles: d.cycles_not_taken, energy_j: d.energy_not_taken_j },
        Ckpt => {
            Term::Ckpt { next: pc + 1, cycles: d.cycles_not_taken, energy_j: d.energy_not_taken_j }
        }
        _ => unreachable!("make_term called on a non-terminator"),
    }
}

/// Maximum number of blocks fused into one superblock chain.
pub(crate) const MAX_CHAIN_LEN: usize = 16;

impl BlockTable {
    /// Builds profile-directed superblock chains from warm-up counts.
    ///
    /// `execs[p]` is how often plan `p` executed during warm-up and
    /// `edges[p]` holds its two hottest observed successor edges. Chains
    /// grow greedily from the hottest unchained block: a link is added
    /// only when its hottest successor edge *dominates* (covers at least
    /// half of the block's executions), the successor is not already on
    /// a chain, and the chain stays acyclic — self-looping blocks are
    /// left to the block tier's streak batching, and `halt`/`ckpt`
    /// terminators never extend (they end the run). Blocks can only be
    /// *entered* at a chain head; side entries dispatch as plain blocks.
    ///
    /// Returns the flattened chain elements plus a per-plan
    /// `(start, len)` span into them (`len < 2` means "no chain here").
    pub(crate) fn build_chains(
        &self,
        execs: &[u64],
        edges: &[[(u32, u64); 2]],
    ) -> (Vec<u32>, Vec<(u32, u32)>) {
        let n = self.plans.len();
        let mut elems = Vec::new();
        let mut span = vec![(0u32, 0u32); n];
        let mut in_chain = vec![false; n];
        // Hottest heads first; index tiebreak keeps the build
        // deterministic for equal counts.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&p| (std::cmp::Reverse(execs[p as usize]), p));
        for &head in &order {
            if execs[head as usize] == 0 || in_chain[head as usize] {
                continue;
            }
            let mut chain = vec![head];
            let mut cur = head;
            loop {
                if chain.len() >= MAX_CHAIN_LEN {
                    break;
                }
                if matches!(self.plans[cur as usize].term, Term::Halt { .. } | Term::Ckpt { .. }) {
                    break;
                }
                let e = &edges[cur as usize];
                let (succ, cnt) = if e[0].1 >= e[1].1 { e[0] } else { e[1] };
                if succ == NO_PLAN || cnt * 2 < execs[cur as usize] {
                    break;
                }
                if in_chain[succ as usize] || chain.contains(&succ) {
                    break;
                }
                chain.push(succ);
                cur = succ;
            }
            if chain.len() >= 2 {
                let start = elems.len() as u32;
                span[head as usize] = (start, chain.len() as u32);
                for &p in &chain {
                    in_chain[p as usize] = true;
                }
                elems.extend_from_slice(&chain);
            }
        }
        (elems, span)
    }

    /// Partitions a predecoded image into basic blocks and lowers each
    /// block body to micro-ops.
    pub(crate) fn build(code: &[Decoded], entry: u32) -> BlockTable {
        let insts: Vec<Inst> = code.iter().map(|d| d.inst).collect();
        let is_leader = nvp_isa::blocks::leaders(&insts, entry);
        let mut table =
            BlockTable { plans: Vec::new(), ops: Vec::new(), leader: vec![NO_PLAN; code.len()] };
        let mut pc = 0usize;
        while pc < code.len() {
            if !is_leader[pc] {
                // Only reachable through a dynamic jump; the engine
                // single-steps such addresses.
                pc += 1;
                continue;
            }
            table.leader[pc] = table.plans.len() as u32;
            let op_start = table.ops.len() as u32;
            let mut body_cycles = 0u64;
            let mut body_class_counts = [0u64; 9];
            let mut cur = pc;
            let term = loop {
                let d = &code[cur];
                if d.inst.is_block_terminator() {
                    break make_term(d, cur as u32);
                }
                let op = MicroOp::lower(d).expect("non-terminators lower to micro-ops");
                body_cycles += u64::from(op.cycles);
                body_class_counts[usize::from(op.class_idx)] += 1;
                table.ops.push(op);
                cur += 1;
                if cur >= code.len() || is_leader[cur] {
                    break Term::FallThrough { next: cur as u32 };
                }
            };
            let op_len = table.ops.len() as u32 - op_start;
            let (term_insts, term_class, next_scan) = match term {
                Term::FallThrough { next } => (0u64, 0u8, next as usize),
                _ => (1u64, code[cur].class.index() as u8, cur + 1),
            };
            table.plans.push(BlockPlan {
                start: pc as u32,
                op_start,
                op_len,
                insts: u64::from(op_len) + term_insts,
                body_cycles,
                body_class_counts,
                term_class,
                term,
            });
            pc = next_scan;
        }
        table
    }
}
