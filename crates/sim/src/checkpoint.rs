//! Durable checkpoint images with in-tree integrity verification.
//!
//! A backup operation serializes the volatile [`ArchState`] into a word
//! vector and seals it with a CRC-32 written *after* the payload — the
//! same commit-record discipline real intermittent-computing runtimes
//! (Mementos, Hibernus, Freezer) use so that a torn write is detectable:
//! if power fails mid-backup the payload prefix is new but the CRC still
//! describes the old image (or nothing), and verification fails on the
//! next restore. Retention bit-flips during off-time likewise break the
//! CRC. The fault-injection layer in `nvp-core` mutates checkpoints only
//! through [`Checkpoint::words_mut`], so every corruption path funnels
//! into the one [`Checkpoint::verify`] gate.

use serde::{Deserialize, Serialize};

use crate::machine::ArchState;

/// Number of 16-bit payload words in a sealed checkpoint: 16 registers
/// plus the 32-bit program counter split into two halves.
pub const CHECKPOINT_WORDS: usize = 18;

/// CRC-32 (IEEE 802.3, reflected 0xEDB88320) lookup table, generated at
/// compile time so the checkpoint path stays dependency-free.
const CRC32_TABLE: [u32; 256] = crc32_table();

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Folds `bytes` into a running (pre-inverted) CRC-32 accumulator.
const fn crc32_accum(mut c: u32, bytes: &[u8]) -> u32 {
    let mut i = 0;
    while i < bytes.len() {
        c = CRC32_TABLE[((c ^ bytes[i] as u32) & 0xFF) as usize] ^ (c >> 8);
        i += 1;
    }
    c
}

/// CRC-32 over a byte slice — the same polynomial and table as
/// [`crc32_words`]. The persistent simulation-result cache
/// (`nvp-experiments`) frames its on-disk records with this, so cache
/// integrity and checkpoint integrity share one checksum
/// implementation.
#[must_use]
pub fn crc32_bytes(bytes: &[u8]) -> u32 {
    !crc32_accum(0xFFFF_FFFF, bytes)
}

/// CRC-32 over a word slice, feeding each word little-endian byte first.
#[must_use]
pub fn crc32_words(words: &[u16]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &w in words {
        c = crc32_accum(c, &w.to_le_bytes());
    }
    !c
}

/// How many leading payload words a torn backup managed to write durably
/// before the energy ran out, given the fraction of the backup's energy
/// budget that was actually delivered. Clamped to `[0, total_words]`;
/// the quantization is deliberately floor-like (a partially written word
/// does not count as written).
#[must_use]
pub fn torn_prefix_words(total_words: usize, backup_energy_fraction: f64) -> usize {
    let f = backup_energy_fraction.clamp(0.0, 1.0);
    let written = (f * total_words as f64) as usize;
    written.min(total_words)
}

/// A sealed (or torn) checkpoint image: the serialized [`ArchState`]
/// payload plus the CRC-32 commit record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Checkpoint {
    words: [u16; CHECKPOINT_WORDS],
    crc: u32,
}

impl Checkpoint {
    /// Serializes `state` and seals it with a matching CRC. A freshly
    /// sealed checkpoint always [`verify`](Self::verify)s.
    #[must_use]
    pub fn seal(state: &ArchState) -> Self {
        let words = encode(state);
        Checkpoint { crc: crc32_words(&words), words }
    }

    /// Models a torn backup: only the first `written_words` payload words
    /// of `state` landed; the rest of the image keeps whatever `prev`
    /// held in that slot (erased `0xFFFF` when the slot was empty), and
    /// the CRC commit record — written last — was never updated.
    #[must_use]
    pub fn torn(state: &ArchState, prev: Option<&Checkpoint>, written_words: usize) -> Self {
        let new = encode(state);
        let (mut words, crc) = match prev {
            Some(p) => (p.words, p.crc),
            None => ([0xFFFFu16; CHECKPOINT_WORDS], 0),
        };
        let n = written_words.min(CHECKPOINT_WORDS);
        words[..n].copy_from_slice(&new[..n]);
        Checkpoint { words, crc }
    }

    /// `true` iff the CRC commit record matches the payload.
    #[must_use]
    pub fn verify(&self) -> bool {
        crc32_words(&self.words) == self.crc
    }

    /// Decodes the payload back into an [`ArchState`]. Only meaningful
    /// when [`verify`](Self::verify) holds; callers gate on it.
    #[must_use]
    pub fn state(&self) -> ArchState {
        let mut regs = [0u16; 16];
        regs.copy_from_slice(&self.words[..16]);
        let pc = (u32::from(self.words[16]) << 16) | u32::from(self.words[17]);
        ArchState { regs, pc }
    }

    /// Read access to the payload words.
    #[must_use]
    pub fn words(&self) -> &[u16; CHECKPOINT_WORDS] {
        &self.words
    }

    /// Mutable payload access for fault injection (retention bit-flips).
    /// The CRC is *not* recomputed: any real change makes
    /// [`verify`](Self::verify) fail, which is the point.
    pub fn words_mut(&mut self) -> &mut [u16; CHECKPOINT_WORDS] {
        &mut self.words
    }
}

fn encode(state: &ArchState) -> [u16; CHECKPOINT_WORDS] {
    let mut words = [0u16; CHECKPOINT_WORDS];
    words[..16].copy_from_slice(&state.regs);
    words[16] = (state.pc >> 16) as u16;
    words[17] = (state.pc & 0xFFFF) as u16;
    words
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ArchState {
        let mut regs = [0u16; 16];
        for (i, r) in regs.iter_mut().enumerate() {
            *r = (i as u16) * 0x1111;
        }
        ArchState { regs, pc: 0x0001_2345 }
    }

    #[test]
    fn crc32_matches_reference_vector() {
        // CRC-32 (IEEE) of the bytes "12345678" is 0x9AE0DAAF; fed as
        // little-endian word pairs ("12" = [0x31, 0x32] → word 0x3231).
        let words: Vec<u16> =
            b"12345678".chunks(2).map(|c| u16::from(c[0]) | (u16::from(c[1]) << 8)).collect();
        assert_eq!(crc32_words(&words), 0x9AE0_DAAF);
        assert_eq!(crc32_words(&[]), 0);
        // The byte-slice form is the same checksum without the word
        // framing: identical on the same byte stream.
        assert_eq!(crc32_bytes(b"12345678"), 0x9AE0_DAAF);
        assert_eq!(crc32_bytes(b"123456789"), 0xCBF4_3926, "CRC-32 check value");
        assert_eq!(crc32_bytes(&[]), 0);
    }

    #[test]
    fn sealed_checkpoint_roundtrips_and_verifies() {
        let s = state();
        let ckpt = Checkpoint::seal(&s);
        assert!(ckpt.verify());
        assert_eq!(ckpt.state(), s);
    }

    #[test]
    fn any_single_bit_flip_fails_verification() {
        let ckpt = Checkpoint::seal(&state());
        for word in 0..CHECKPOINT_WORDS {
            for bit in 0..16 {
                let mut c = ckpt;
                c.words_mut()[word] ^= 1 << bit;
                assert!(!c.verify(), "flip at word {word} bit {bit} went undetected");
            }
        }
    }

    #[test]
    fn torn_checkpoint_fails_verification() {
        let old = Checkpoint::seal(&state());
        let mut next = state();
        next.pc = 0x9999;
        next.regs[3] = 0xDEAD;
        for written in 0..CHECKPOINT_WORDS {
            let torn = Checkpoint::torn(&next, Some(&old), written);
            // Identical prefixes can leave the old (valid) image intact;
            // any actually-changed prefix must break the commit record.
            if torn.words() != old.words() {
                assert!(!torn.verify(), "torn at {written} words went undetected");
            }
        }
        let torn_fresh = Checkpoint::torn(&next, None, 5);
        assert!(!torn_fresh.verify());
    }

    #[test]
    fn fully_written_torn_image_still_lacks_commit_record() {
        // Even a 100%-payload tear is invalid: the CRC write never ran.
        let old = Checkpoint::seal(&state());
        let mut next = state();
        next.regs[1] = 7;
        let torn = Checkpoint::torn(&next, Some(&old), CHECKPOINT_WORDS);
        assert!(!torn.verify());
    }

    #[test]
    fn torn_prefix_quantizes_and_clamps() {
        assert_eq!(torn_prefix_words(18, 0.0), 0);
        assert_eq!(torn_prefix_words(18, 1.0), 18);
        assert_eq!(torn_prefix_words(18, 0.5), 9);
        assert_eq!(torn_prefix_words(18, 0.99), 17, "partial word does not count");
        assert_eq!(torn_prefix_words(18, -3.0), 0);
        assert_eq!(torn_prefix_words(18, 42.0), 18);
    }

    #[test]
    fn pc_halves_encode_msb_first() {
        let s = ArchState { regs: [0; 16], pc: 0x00AB_CDEF };
        let ckpt = Checkpoint::seal(&s);
        assert_eq!(ckpt.words()[16], 0x00AB);
        assert_eq!(ckpt.words()[17], 0xCDEF);
    }
}
