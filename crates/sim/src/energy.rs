//! Per-instruction cycle and energy cost models.

use nvp_isa::Inst;
use serde::{Deserialize, Serialize};

/// Coarse instruction classes used for cycle/energy accounting and for
/// energy-breakdown reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InstClass {
    /// Register-register and register-immediate ALU operations.
    Alu,
    /// Multiplications (`mul`, `mulh`).
    Mul,
    /// Division and remainder (`divu`, `remu`) — multi-cycle microcode.
    Div,
    /// Data-memory loads.
    Load,
    /// Data-memory stores.
    Store,
    /// Conditional branches.
    Branch,
    /// Unconditional jumps (`jal`, `jalr`).
    Jump,
    /// Port I/O (`in`, `out`).
    Io,
    /// `nop`, `halt`, `ckpt`.
    System,
}

impl InstClass {
    /// All classes, in reporting order.
    pub const ALL: [InstClass; 9] = [
        InstClass::Alu,
        InstClass::Mul,
        InstClass::Div,
        InstClass::Load,
        InstClass::Store,
        InstClass::Branch,
        InstClass::Jump,
        InstClass::Io,
        InstClass::System,
    ];

    /// Classifies an instruction.
    ///
    /// # Example
    ///
    /// ```
    /// use nvp_isa::{Inst, Reg};
    /// use nvp_sim::InstClass;
    ///
    /// let i = Inst::Lw { rd: Reg::R1, rs1: Reg::R2, offset: 0 };
    /// assert_eq!(InstClass::of(&i), InstClass::Load);
    /// ```
    #[must_use]
    pub fn of(inst: &Inst) -> InstClass {
        use Inst::*;
        match inst {
            Add { .. }
            | Sub { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | Sll { .. }
            | Srl { .. }
            | Sra { .. }
            | Slt { .. }
            | Sltu { .. }
            | Addi { .. }
            | Andi { .. }
            | Ori { .. }
            | Xori { .. }
            | Slli { .. }
            | Srli { .. }
            | Srai { .. }
            | Slti { .. }
            | Li { .. } => InstClass::Alu,
            Mul { .. } | Mulh { .. } => InstClass::Mul,
            Divu { .. } | Remu { .. } => InstClass::Div,
            Lw { .. } => InstClass::Load,
            Sw { .. } => InstClass::Store,
            Beq { .. } | Bne { .. } | Blt { .. } | Bge { .. } | Bltu { .. } | Bgeu { .. } => {
                InstClass::Branch
            }
            Jal { .. } | Jalr { .. } => InstClass::Jump,
            Out { .. } | In { .. } => InstClass::Io,
            Nop | Halt | Ckpt => InstClass::System,
        }
    }

    /// Index of the class within [`InstClass::ALL`].
    ///
    /// A direct match rather than a search of `ALL`: this sits on the
    /// simulator's per-instruction accounting path.
    #[must_use]
    pub const fn index(self) -> usize {
        match self {
            InstClass::Alu => 0,
            InstClass::Mul => 1,
            InstClass::Div => 2,
            InstClass::Load => 3,
            InstClass::Store => 4,
            InstClass::Branch => 5,
            InstClass::Jump => 6,
            InstClass::Io => 7,
            InstClass::System => 8,
        }
    }
}

/// Cycle counts per instruction class (single-issue, in-order NV16 core).
///
/// Defaults model an MCU-class 5-stage pipeline with a 16-cycle iterative
/// divider and 2-cycle data-memory access.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CycleModel {
    /// Cycles for single-cycle ALU operations.
    pub alu: u32,
    /// Cycles for multiplications.
    pub mul: u32,
    /// Cycles for division/remainder.
    pub div: u32,
    /// Cycles for loads.
    pub load: u32,
    /// Cycles for stores.
    pub store: u32,
    /// Cycles for a not-taken branch.
    pub branch_not_taken: u32,
    /// Cycles for a taken branch (pipeline refill).
    pub branch_taken: u32,
    /// Cycles for unconditional jumps.
    pub jump: u32,
    /// Cycles for port I/O.
    pub io: u32,
    /// Cycles for `nop`/`halt`/`ckpt`.
    pub system: u32,
}

impl Default for CycleModel {
    fn default() -> Self {
        CycleModel {
            alu: 1,
            mul: 2,
            div: 16,
            load: 2,
            store: 2,
            branch_not_taken: 1,
            branch_taken: 2,
            jump: 2,
            io: 2,
            system: 1,
        }
    }
}

impl CycleModel {
    /// Cycles charged for `inst`, given whether a branch was taken.
    #[must_use]
    pub fn cycles(&self, class: InstClass, taken: bool) -> u32 {
        match class {
            InstClass::Alu => self.alu,
            InstClass::Mul => self.mul,
            InstClass::Div => self.div,
            InstClass::Load => self.load,
            InstClass::Store => self.store,
            InstClass::Branch => {
                if taken {
                    self.branch_taken
                } else {
                    self.branch_not_taken
                }
            }
            InstClass::Jump => self.jump,
            InstClass::Io => self.io,
            InstClass::System => self.system,
        }
    }
}

/// Energy cost model: a base cost per cycle plus per-class extras.
///
/// All values are in **joules**. The default instance is calibrated so an
/// ALU-dominated instruction mix at 1 MHz draws ≈0.209 mW — the operating
/// point measured for wearable NVP prototypes. The data-memory write extra
/// is what an NVP platform overrides to reflect its nonvolatile main-memory
/// technology (ReRAM/FeRAM writes cost more than SRAM writes).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EnergyModel {
    /// Core logic + instruction fetch energy per clock cycle.
    pub base_per_cycle_j: f64,
    /// Extra energy per data-memory read access.
    pub mem_read_extra_j: f64,
    /// Extra energy per data-memory write access.
    pub mem_write_extra_j: f64,
    /// Extra energy per multiplication.
    pub mul_extra_j: f64,
    /// Extra energy per division.
    pub div_extra_j: f64,
    /// Extra energy per port-I/O operation (pad drivers).
    pub io_extra_j: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        EnergyModel {
            base_per_cycle_j: 190e-12,
            mem_read_extra_j: 35e-12,
            mem_write_extra_j: 45e-12,
            mul_extra_j: 60e-12,
            div_extra_j: 120e-12,
            io_extra_j: 80e-12,
        }
    }
}

impl EnergyModel {
    /// Energy charged for an instruction of `class` taking `cycles` cycles.
    #[must_use]
    pub fn energy(&self, class: InstClass, cycles: u32) -> f64 {
        let base = self.base_per_cycle_j * f64::from(cycles);
        let extra = match class {
            InstClass::Mul => self.mul_extra_j,
            InstClass::Div => self.div_extra_j,
            InstClass::Load => self.mem_read_extra_j,
            InstClass::Store => self.mem_write_extra_j,
            InstClass::Io => self.io_extra_j,
            _ => 0.0,
        };
        base + extra
    }

    /// Returns a copy with the data-memory write extra replaced — used by
    /// NVP platforms whose main memory is a nonvolatile technology.
    #[must_use]
    pub fn with_mem_write_extra(mut self, joules: f64) -> Self {
        self.mem_write_extra_j = joules;
        self
    }

    /// Returns a copy with the data-memory read extra replaced.
    #[must_use]
    pub fn with_mem_read_extra(mut self, joules: f64) -> Self {
        self.mem_read_extra_j = joules;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::Reg;

    #[test]
    fn classify_covers_all_groups() {
        use nvp_isa::Inst::*;
        let r = Reg::R1;
        assert_eq!(InstClass::of(&Add { rd: r, rs1: r, rs2: r }), InstClass::Alu);
        assert_eq!(InstClass::of(&Mulh { rd: r, rs1: r, rs2: r }), InstClass::Mul);
        assert_eq!(InstClass::of(&Remu { rd: r, rs1: r, rs2: r }), InstClass::Div);
        assert_eq!(InstClass::of(&Lw { rd: r, rs1: r, offset: 0 }), InstClass::Load);
        assert_eq!(InstClass::of(&Sw { rs2: r, rs1: r, offset: 0 }), InstClass::Store);
        assert_eq!(InstClass::of(&Bgeu { rs1: r, rs2: r, offset: 0 }), InstClass::Branch);
        assert_eq!(InstClass::of(&Jalr { rd: r, rs1: r, offset: 0 }), InstClass::Jump);
        assert_eq!(InstClass::of(&In { rd: r, port: 0 }), InstClass::Io);
        assert_eq!(InstClass::of(&Ckpt), InstClass::System);
    }

    #[test]
    fn class_index_bijective() {
        for (i, c) in InstClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn branch_cycles_depend_on_outcome() {
        let cm = CycleModel::default();
        assert!(cm.cycles(InstClass::Branch, true) > cm.cycles(InstClass::Branch, false));
    }

    #[test]
    fn default_energy_near_published_operating_point() {
        // An ALU-heavy mix should land near 209 pJ/cycle once the typical
        // fraction of memory/branch operations is included. Sanity-check
        // the pure-ALU floor and the loaded ceiling bracket it.
        let em = EnergyModel::default();
        let alu = em.energy(InstClass::Alu, 1);
        let load = em.energy(InstClass::Load, 2);
        assert!(alu < 209e-12, "ALU floor {alu}");
        assert!(load / 2.0 > 195e-12, "memory-loaded per-cycle {load}");
    }

    #[test]
    fn energy_extras_applied() {
        let em = EnergyModel::default().with_mem_write_extra(1e-9);
        let e = em.energy(InstClass::Store, 2);
        assert!((e - (2.0 * em.base_per_cycle_j + 1e-9)).abs() < 1e-18);
    }
}
