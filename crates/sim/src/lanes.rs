//! Structure-of-arrays lane batching: W same-program trials in lockstep.
//!
//! A [`LaneMachine`] executes up to [`MAX_LANES`] *lanes* — independent
//! machines running the same [`MachineImage`] — in lockstep through the
//! fused block plans. State is laid out structure-of-arrays: registers
//! slot-major (`regs[slot * width + lane]`), data memory lane-major,
//! inputs and output logs per lane. While lanes are *converged* (same
//! pc, same halted flag, bit-identical counters), one dispatch, one
//! integer-accounting add, and one f64 energy add per op serve every
//! lane; only the `u16` data operations scale with the lane count. That
//! is where the tier's throughput comes from: per-op cost is W cheap
//! lane ops plus one shared bookkeeping step instead of W full scalar
//! pipelines.
//!
//! Sharing the accounting is exact, not approximate: op costs are
//! data-independent, so converged lanes charge identical cycle/energy
//! sequences. The moment lanes would differ they are *peeled* to the
//! scalar tier ([`Machine::run_blocks`]), each carrying its own exact
//! state:
//!
//! - **Branch divergence** — lanes disagreeing with the leading lane's
//!   direction peel *before* the terminator (pc on the branch itself)
//!   and re-execute it scalar, because taken/not-taken costs differ.
//! - **`jalr` spread** — indirect-jump cost is uniform, so the
//!   terminator retires in lockstep and lanes peel *after* it at their
//!   own targets.
//! - **Memory faults** — faulting lanes peel at the faulting op with
//!   the retired prefix accounted exactly as the scalar engine would,
//!   and carry a sticky [`SimError`]; surviving lanes continue.
//! - **No lockstep progress** — a non-leader pc (after `jalr`) or a
//!   block that cannot fit the whole budget peels every lane (a
//!   *scalar fallback*), mirroring the scalar engine's single-step
//!   fallback.
//!
//! Peeled lanes keep running on their own machines on subsequent
//! [`run`](LaneMachine::run) calls; [`extract`](LaneMachine::extract)
//! returns any lane as a plain [`Machine`], bit-identical to a scalar
//! machine driven with the same inputs.

use std::sync::Arc;

use crate::block::{BlockPlan, Cond, MicroKind, Term, DISCARD_SLOT, NO_PLAN, NUM_SLOTS};
use crate::machine::{Counters, Machine, MachineImage, SimError};

/// Maximum lanes per [`LaneMachine`] (divergence masks are `u64`).
pub const MAX_LANES: usize = 64;

/// Cumulative statistics for one [`LaneMachine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Blocks dispatched in lockstep.
    pub lockstep_blocks: u64,
    /// Shared instructions retired in lockstep (per-lane count).
    pub lockstep_insts: u64,
    /// Effective instructions retired in lockstep, summed over the
    /// lanes that were converged at each block.
    pub lane_insts: u64,
    /// Lanes peeled to the scalar tier on branch/`jalr` divergence.
    pub divergence_peels: u64,
    /// Lanes peeled to the scalar tier on a memory fault.
    pub fault_peels: u64,
    /// Whole-group peels when lockstep could make no progress
    /// (non-leader pc or block larger than the remaining budget).
    pub scalar_fallbacks: u64,
}

/// W same-program lanes executing in lockstep with SoA state.
#[derive(Debug)]
pub struct LaneMachine {
    image: Arc<MachineImage>,
    width: usize,
    /// Data-memory words per lane.
    words: usize,
    /// Slot-major register file: `regs[slot * width + lane]`, slot 0
    /// all-zero (r0), slot [`DISCARD_SLOT`] absorbing r0 writes.
    regs: Vec<u16>,
    /// Lane-major data memory: `dmem[lane * words + addr]`.
    dmem: Vec<u16>,
    /// Per-lane latched input ports: `inputs[lane * 16 + port]`.
    inputs: Vec<u16>,
    out_logs: Vec<Vec<(u8, u16)>>,
    /// Shared state of the converged lanes.
    pc: u32,
    halted: bool,
    counters: Counters,
    /// Converged live lanes, ascending; parallel bitmask.
    active: Vec<u16>,
    active_mask: u64,
    /// Lanes that left lockstep, each now a scalar machine.
    peeled: Vec<Option<Machine>>,
    /// Sticky per-lane execution fault (the lane is finished).
    errors: Vec<Option<SimError>>,
    stats: LaneStats,
}

impl LaneMachine {
    /// Creates `width` fresh lanes over a shared image.
    ///
    /// # Panics
    ///
    /// Panics if `width` is 0 or exceeds [`MAX_LANES`].
    #[must_use]
    pub fn new(image: &Arc<MachineImage>, width: usize) -> LaneMachine {
        assert!((1..=MAX_LANES).contains(&width), "lane width {width} not in 1..={MAX_LANES}");
        let words = image.dmem_init.len();
        let mut dmem = Vec::with_capacity(words * width);
        for _ in 0..width {
            dmem.extend_from_slice(&image.dmem_init);
        }
        LaneMachine {
            image: Arc::clone(image),
            width,
            words,
            regs: vec![0; NUM_SLOTS * width],
            dmem,
            inputs: vec![0; 16 * width],
            out_logs: vec![Vec::new(); width],
            pc: image.entry,
            halted: false,
            counters: Counters::default(),
            active: (0..width as u16).collect(),
            active_mask: if width == MAX_LANES { u64::MAX } else { (1u64 << width) - 1 },
            peeled: vec![None; width],
            errors: vec![None; width],
            stats: LaneStats::default(),
        }
    }

    /// Number of lanes.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// The shared program image.
    #[must_use]
    pub fn image(&self) -> &Arc<MachineImage> {
        &self.image
    }

    /// Cumulative lane statistics.
    #[must_use]
    pub fn stats(&self) -> LaneStats {
        self.stats
    }

    /// Mean fraction of lanes converged per lockstep block (1.0 = every
    /// block served all lanes; 0.0 before any lockstep execution).
    #[must_use]
    pub fn occupancy(&self) -> f64 {
        if self.stats.lockstep_insts == 0 {
            return 0.0;
        }
        self.stats.lane_insts as f64 / (self.stats.lockstep_insts * self.width as u64) as f64
    }

    /// Latches an input-port value for one lane.
    pub fn set_input(&mut self, lane: usize, port: u8, value: u16) {
        if let Some(m) = self.peeled[lane].as_mut() {
            m.set_input(port, value);
        } else {
            self.inputs[lane * 16 + usize::from(port & 0xF)] = value;
        }
    }

    /// Writes a register in one lane (writes to r0 are discarded).
    pub fn set_reg(&mut self, lane: usize, r: nvp_isa::Reg, value: u16) {
        if let Some(m) = self.peeled[lane].as_mut() {
            m.set_reg(r, value);
        } else if !r.is_zero() {
            self.regs[r.index() * self.width + lane] = value;
        }
    }

    /// Writes a data-memory word in one lane. Returns `false` if out of
    /// range.
    pub fn write_word(&mut self, lane: usize, addr: u16, value: u16) -> bool {
        if let Some(m) = self.peeled[lane].as_mut() {
            return m.write_word(addr, value);
        }
        if usize::from(addr) >= self.words {
            return false;
        }
        self.dmem[lane * self.words + usize::from(addr)] = value;
        true
    }

    /// Reads a data-memory word from one lane, if within range.
    #[must_use]
    pub fn read_word(&self, lane: usize, addr: u16) -> Option<u16> {
        if let Some(m) = self.peeled[lane].as_ref() {
            return m.read_word(addr);
        }
        self.dmem.get(lane * self.words + usize::from(addr)).copied()
    }

    /// `true` once the lane has executed `halt`.
    #[must_use]
    pub fn lane_halted(&self, lane: usize) -> bool {
        match self.peeled[lane].as_ref() {
            Some(m) => m.halted(),
            None => self.halted,
        }
    }

    /// The lane's sticky execution fault, if it faulted.
    #[must_use]
    pub fn lane_error(&self, lane: usize) -> Option<&SimError> {
        self.errors[lane].as_ref()
    }

    /// The lane's counters (shared while converged).
    #[must_use]
    pub fn lane_counters(&self, lane: usize) -> Counters {
        match self.peeled[lane].as_ref() {
            Some(m) => *m.counters(),
            None => self.counters,
        }
    }

    /// `true` when every lane is halted or faulted — further
    /// [`run`](LaneMachine::run) calls cannot make progress.
    #[must_use]
    pub fn all_done(&self) -> bool {
        (0..self.width).all(|l| self.errors[l].is_some() || self.lane_halted(l))
    }

    /// Extracts one lane as a plain scalar [`Machine`] (clone of the
    /// lane's exact state; the lane keeps running in the group).
    #[must_use]
    pub fn extract(&self, lane: usize) -> Machine {
        if let Some(m) = self.peeled[lane].as_ref() {
            return m.clone();
        }
        self.lane_machine(lane, self.pc, self.halted, self.counters, self.out_logs[lane].clone())
    }

    /// Advances every live lane by up to `max_insts` instructions:
    /// previously peeled lanes each run scalar, then the converged group
    /// runs in lockstep. A lockstep `ckpt` stop ends the call early for
    /// the converged group, exactly as it does for
    /// [`Machine::run_blocks`]; faults never abort the group — the
    /// faulting lanes peel with a sticky [`lane_error`](LaneMachine::lane_error).
    pub fn run(&mut self, max_insts: u64) {
        for lane in 0..self.width {
            if self.errors[lane].is_some() {
                continue;
            }
            if let Some(m) = self.peeled[lane].as_mut() {
                if !m.halted() {
                    if let Err(e) = m.run_blocks(max_insts) {
                        self.errors[lane] = Some(e);
                    }
                }
            }
        }
        self.run_lockstep(max_insts);
    }

    fn run_lockstep(&mut self, max_insts: u64) {
        let mut executed = 0u64;
        while executed < max_insts && !self.halted && !self.active.is_empty() {
            let plan_idx =
                self.image.blocks.leader.get(self.pc as usize).copied().unwrap_or(NO_PLAN);
            let fits = plan_idx != NO_PLAN
                && self.image.blocks.plans[plan_idx as usize].insts <= max_insts - executed;
            if !fits {
                if executed == 0 {
                    // No lockstep progress possible at all this call:
                    // hand every converged lane to the scalar tier.
                    self.stats.scalar_fallbacks += 1;
                    self.peel_all_and_run(max_insts);
                }
                return;
            }
            let plan = self.image.blocks.plans[plan_idx as usize];
            match self.exec_block(&plan, executed, max_insts) {
                Some(now) => executed = now,
                None => return,
            }
        }
    }

    /// Executes one whole block (body + terminator) in lockstep.
    /// Returns the updated shared-instruction count, or `None` when the
    /// call must stop (halt, ckpt, or every lane peeled away).
    fn exec_block(&mut self, plan: &BlockPlan, executed: u64, max_insts: u64) -> Option<u64> {
        let w = self.width;
        let op_base = plan.op_start as usize;
        let mut c_energy = self.counters.energy_j;

        for i in 0..plan.op_len as usize {
            let op = self.image.blocks.ops[op_base + i];
            match op.kind {
                MicroKind::Add { d, a, b } => {
                    lanewise2(&mut self.regs, w, &self.active, d, a, b, |x, y| x.wrapping_add(y));
                }
                MicroKind::Sub { d, a, b } => {
                    lanewise2(&mut self.regs, w, &self.active, d, a, b, |x, y| x.wrapping_sub(y));
                }
                MicroKind::And { d, a, b } => {
                    lanewise2(&mut self.regs, w, &self.active, d, a, b, |x, y| x & y);
                }
                MicroKind::Or { d, a, b } => {
                    lanewise2(&mut self.regs, w, &self.active, d, a, b, |x, y| x | y);
                }
                MicroKind::Xor { d, a, b } => {
                    lanewise2(&mut self.regs, w, &self.active, d, a, b, |x, y| x ^ y);
                }
                MicroKind::Sll { d, a, b } => {
                    lanewise2(&mut self.regs, w, &self.active, d, a, b, |x, y| x << (y & 0xF));
                }
                MicroKind::Srl { d, a, b } => {
                    lanewise2(&mut self.regs, w, &self.active, d, a, b, |x, y| x >> (y & 0xF));
                }
                MicroKind::Sra { d, a, b } => {
                    lanewise2(&mut self.regs, w, &self.active, d, a, b, |x, y| {
                        ((x as i16) >> (y & 0xF)) as u16
                    });
                }
                MicroKind::Mul { d, a, b } => {
                    lanewise2(&mut self.regs, w, &self.active, d, a, b, |x, y| {
                        (i32::from(x as i16) * i32::from(y as i16)) as u16
                    });
                }
                MicroKind::Mulh { d, a, b } => {
                    lanewise2(&mut self.regs, w, &self.active, d, a, b, |x, y| {
                        ((i32::from(x as i16) * i32::from(y as i16)) >> 16) as u16
                    });
                }
                MicroKind::Slt { d, a, b } => {
                    lanewise2(&mut self.regs, w, &self.active, d, a, b, |x, y| {
                        u16::from((x as i16) < (y as i16))
                    });
                }
                MicroKind::Sltu { d, a, b } => {
                    lanewise2(&mut self.regs, w, &self.active, d, a, b, |x, y| u16::from(x < y));
                }
                MicroKind::Divu { d, a, b } => {
                    lanewise2(&mut self.regs, w, &self.active, d, a, b, |x, y| {
                        x.checked_div(y).unwrap_or(0xFFFF)
                    });
                }
                MicroKind::Remu { d, a, b } => {
                    lanewise2(&mut self.regs, w, &self.active, d, a, b, |x, y| {
                        if y == 0 {
                            x
                        } else {
                            x % y
                        }
                    });
                }
                MicroKind::Addi { d, a, imm } => {
                    lanewise1(&mut self.regs, w, &self.active, d, a, |x| x.wrapping_add(imm));
                }
                MicroKind::Andi { d, a, imm } => {
                    lanewise1(&mut self.regs, w, &self.active, d, a, |x| x & imm);
                }
                MicroKind::Ori { d, a, imm } => {
                    lanewise1(&mut self.regs, w, &self.active, d, a, |x| x | imm);
                }
                MicroKind::Xori { d, a, imm } => {
                    lanewise1(&mut self.regs, w, &self.active, d, a, |x| x ^ imm);
                }
                MicroKind::Slli { d, a, shamt } => {
                    lanewise1(&mut self.regs, w, &self.active, d, a, |x| x << shamt);
                }
                MicroKind::Srli { d, a, shamt } => {
                    lanewise1(&mut self.regs, w, &self.active, d, a, |x| x >> shamt);
                }
                MicroKind::Srai { d, a, shamt } => {
                    lanewise1(&mut self.regs, w, &self.active, d, a, |x| {
                        ((x as i16) >> shamt) as u16
                    });
                }
                MicroKind::Slti { d, a, imm } => {
                    lanewise1(&mut self.regs, w, &self.active, d, a, |x| {
                        u16::from((x as i16) < imm)
                    });
                }
                MicroKind::Li { d, imm } => {
                    lanewise1(&mut self.regs, w, &self.active, d, 0, |_| imm);
                }
                MicroKind::Lw { d, a, offset } => {
                    let a0 = usize::from(a) * w;
                    let d0 = usize::from(d) * w;
                    let mut faults: Option<Vec<(usize, u16)>> = None;
                    for idx in 0..self.active.len() {
                        let l = usize::from(self.active[idx]);
                        let addr = self.regs[a0 + l].wrapping_add(offset);
                        if usize::from(addr) < self.words {
                            self.regs[d0 + l] = self.dmem[l * self.words + usize::from(addr)];
                        } else {
                            faults.get_or_insert_with(Vec::new).push((l, addr));
                        }
                    }
                    if let Some(faults) = faults {
                        self.counters.energy_j = c_energy;
                        self.peel_faulted(&faults, plan, i);
                        if self.active.is_empty() {
                            return None;
                        }
                    }
                }
                MicroKind::Sw { s, a, offset } => {
                    let a0 = usize::from(a) * w;
                    let s0 = usize::from(s) * w;
                    let mut faults: Option<Vec<(usize, u16)>> = None;
                    for idx in 0..self.active.len() {
                        let l = usize::from(self.active[idx]);
                        let addr = self.regs[a0 + l].wrapping_add(offset);
                        if usize::from(addr) < self.words {
                            self.dmem[l * self.words + usize::from(addr)] = self.regs[s0 + l];
                        } else {
                            faults.get_or_insert_with(Vec::new).push((l, addr));
                        }
                    }
                    if let Some(faults) = faults {
                        self.counters.energy_j = c_energy;
                        self.peel_faulted(&faults, plan, i);
                        if self.active.is_empty() {
                            return None;
                        }
                    }
                }
                MicroKind::Nop => {}
                MicroKind::Out { port, s } => {
                    let s0 = usize::from(s) * w;
                    for idx in 0..self.active.len() {
                        let l = usize::from(self.active[idx]);
                        self.out_logs[l].push((port, self.regs[s0 + l]));
                    }
                }
                MicroKind::In { d, port } => {
                    let d0 = usize::from(d) * w;
                    for idx in 0..self.active.len() {
                        let l = usize::from(self.active[idx]);
                        self.regs[d0 + l] = self.inputs[l * 16 + usize::from(port)];
                    }
                }
            }
            // One shared energy add per op: converged lanes charge
            // identical, data-independent per-op costs.
            c_energy += op.energy_j;
        }

        // Terminator. Per-arm peel rules keep every lane's accounting
        // exactly what the scalar engine would have produced.
        let mut stop = false;
        match plan.term {
            Term::FallThrough { next } => {
                self.counters.energy_j = c_energy;
                apply_ints(&mut self.counters, plan, 0, false);
                self.pc = next;
            }
            Term::Branch {
                cond,
                a,
                b,
                taken_pc,
                fall_pc,
                cycles_nt,
                cycles_t,
                energy_nt_j,
                energy_t_j,
            } => {
                let mask = cond_mask(&self.regs, w, &self.active, cond, a, b);
                let lead_taken = mask & (1u64 << self.active[0]) != 0;
                let divergent = if lead_taken { self.active_mask & !mask } else { mask };
                if divergent != 0 {
                    // Taken/not-taken costs differ, so disagreeing lanes
                    // peel *before* the terminator and re-execute it on
                    // the scalar tier with their own direction.
                    self.counters.energy_j = c_energy;
                    let mut cnt = self.counters;
                    cnt.instructions += u64::from(plan.op_len);
                    cnt.cycles += plan.body_cycles;
                    for (c, add) in cnt.class_counts.iter_mut().zip(&plan.body_class_counts) {
                        *c += add;
                    }
                    let term_pc = plan.start + plan.op_len;
                    // `fits` guaranteed op_len + 1 <= max_insts - executed.
                    let budget_after = max_insts - executed - u64::from(plan.op_len);
                    self.peel_divergent(divergent, term_pc, cnt, budget_after);
                }
                let (cycles, energy) =
                    if lead_taken { (cycles_t, energy_t_j) } else { (cycles_nt, energy_nt_j) };
                c_energy += energy;
                self.counters.energy_j = c_energy;
                apply_ints(&mut self.counters, plan, cycles, lead_taken);
                self.pc = if lead_taken { taken_pc } else { fall_pc };
            }
            Term::Jal { link_slot, link_val, target, cycles, energy_j } => {
                lanewise1(&mut self.regs, w, &self.active, link_slot, 0, |_| link_val);
                c_energy += energy_j;
                self.counters.energy_j = c_energy;
                apply_ints(&mut self.counters, plan, cycles, false);
                self.pc = target;
            }
            Term::Jalr { link_slot, link_val, a, offset, cycles, energy_j } => {
                // Indirect-jump cost is uniform: every lane retires the
                // terminator in lockstep (targets read rs1 before the
                // link write), then lanes peel *after* it at their own
                // targets if they spread.
                let a0 = usize::from(a) * w;
                let mut targets = [0u32; MAX_LANES];
                for idx in 0..self.active.len() {
                    let l = usize::from(self.active[idx]);
                    targets[l] = u32::from(self.regs[a0 + l].wrapping_add(offset));
                }
                lanewise1(&mut self.regs, w, &self.active, link_slot, 0, |_| link_val);
                c_energy += energy_j;
                self.counters.energy_j = c_energy;
                apply_ints(&mut self.counters, plan, cycles, false);
                let lead = targets[usize::from(self.active[0])];
                let mut divergent = 0u64;
                for idx in 0..self.active.len() {
                    let l = usize::from(self.active[idx]);
                    if targets[l] != lead {
                        divergent |= 1u64 << l;
                    }
                }
                if divergent != 0 {
                    let budget_after = max_insts - executed - plan.insts;
                    let cnt = self.counters;
                    for (l, &target) in targets.iter().enumerate().take(self.width) {
                        if divergent & (1u64 << l) != 0 {
                            self.peel_one(l, target, cnt, budget_after);
                        }
                    }
                }
                self.pc = lead;
            }
            Term::Halt { cycles, energy_j } => {
                c_energy += energy_j;
                self.counters.energy_j = c_energy;
                apply_ints(&mut self.counters, plan, cycles, false);
                self.halted = true;
                // As in step mode, pc stays on the halt instruction.
                self.pc = plan.start + plan.op_len;
                stop = true;
            }
            Term::Ckpt { next, cycles, energy_j } => {
                c_energy += energy_j;
                self.counters.energy_j = c_energy;
                apply_ints(&mut self.counters, plan, cycles, false);
                self.pc = next;
                stop = true;
            }
        }

        self.stats.lockstep_blocks += 1;
        self.stats.lockstep_insts += plan.insts;
        self.stats.lane_insts += plan.insts * self.active.len() as u64;
        if stop {
            None
        } else {
            Some(executed + plan.insts)
        }
    }

    /// Peels `faults` lanes at body op `done` of `plan` with the retired
    /// prefix accounted exactly as the scalar fault path does, recording
    /// a sticky [`SimError::MemOutOfRange`] per lane. The shared
    /// `counters.energy_j` must already be synced to the pre-fault-op
    /// accumulator.
    fn peel_faulted(&mut self, faults: &[(usize, u16)], plan: &BlockPlan, done: usize) {
        let mut cnt = self.counters;
        cnt.instructions += done as u64;
        let op_base = plan.op_start as usize;
        for j in 0..done {
            let op = self.image.blocks.ops[op_base + j];
            cnt.cycles += u64::from(op.cycles);
            cnt.class_counts[usize::from(op.class_idx)] += 1;
        }
        let pc = plan.start + done as u32;
        for &(lane, addr) in faults {
            let log = std::mem::take(&mut self.out_logs[lane]);
            let m = self.lane_machine(lane, pc, false, cnt, log);
            self.peeled[lane] = Some(m);
            self.errors[lane] = Some(SimError::MemOutOfRange { addr, pc });
            self.stats.fault_peels += 1;
            self.deactivate(lane);
        }
    }

    /// Peels every lane in `mask` at `pc` with counters `cnt`, then runs
    /// each for the lane's remaining per-call budget on the scalar tier.
    fn peel_divergent(&mut self, mask: u64, pc: u32, cnt: Counters, budget: u64) {
        for l in 0..self.width {
            if mask & (1u64 << l) != 0 {
                self.peel_one(l, pc, cnt, budget);
            }
        }
    }

    fn peel_one(&mut self, lane: usize, pc: u32, cnt: Counters, budget: u64) {
        let log = std::mem::take(&mut self.out_logs[lane]);
        let mut m = self.lane_machine(lane, pc, false, cnt, log);
        self.stats.divergence_peels += 1;
        self.deactivate(lane);
        if budget > 0 {
            if let Err(e) = m.run_blocks(budget) {
                self.errors[lane] = Some(e);
            }
        }
        self.peeled[lane] = Some(m);
    }

    /// Peels every converged lane at the shared pc and runs each for
    /// `budget` scalar instructions (the lockstep no-progress path).
    fn peel_all_and_run(&mut self, budget: u64) {
        let lanes: Vec<usize> = self.active.iter().map(|&l| usize::from(l)).collect();
        for lane in lanes {
            let log = std::mem::take(&mut self.out_logs[lane]);
            let mut m = self.lane_machine(lane, self.pc, self.halted, self.counters, log);
            if let Err(e) = m.run_blocks(budget) {
                self.errors[lane] = Some(e);
            }
            self.peeled[lane] = Some(m);
        }
        self.active.clear();
        self.active_mask = 0;
    }

    /// Builds a scalar [`Machine`] from one lane's SoA state.
    fn lane_machine(
        &self,
        lane: usize,
        pc: u32,
        halted: bool,
        counters: Counters,
        out_log: Vec<(u8, u16)>,
    ) -> Machine {
        let w = self.width;
        let mut regs = [0u16; 16];
        for (slot, r) in regs.iter_mut().enumerate().skip(1) {
            *r = self.regs[slot * w + lane];
        }
        let mut inputs = [0u16; 16];
        inputs.copy_from_slice(&self.inputs[lane * 16..lane * 16 + 16]);
        let dmem = self.dmem[lane * self.words..(lane + 1) * self.words].to_vec();
        Machine::from_lane_parts(
            Arc::clone(&self.image),
            regs,
            pc,
            halted,
            dmem,
            inputs,
            out_log,
            counters,
        )
    }

    fn deactivate(&mut self, lane: usize) {
        self.active.retain(|&l| usize::from(l) != lane);
        self.active_mask &= !(1u64 << lane);
    }
}

/// Folds one whole block's integer accounting into `counters`, exactly
/// as the scalar fused engine does per streak iteration.
fn apply_ints(counters: &mut Counters, plan: &BlockPlan, term_cycles: u32, taken: bool) {
    counters.instructions += plan.insts;
    counters.cycles += plan.body_cycles + u64::from(term_cycles);
    for (c, add) in counters.class_counts.iter_mut().zip(&plan.body_class_counts) {
        *c += add;
    }
    if !matches!(plan.term, Term::FallThrough { .. }) {
        counters.class_counts[usize::from(plan.term_class)] += 1;
    }
    counters.branches_taken += u64::from(taken);
}

/// Applies `f(src)` to the `a` row, writing the `d` row, for the active
/// lanes. Dense groups (no peels yet) take a contiguous, temporary-
/// buffered path the compiler can vectorize; sparse groups loop the
/// active list. `d` may be [`DISCARD_SLOT`]; row 0 (r0) is never a
/// destination.
#[inline(always)]
fn lanewise1(regs: &mut [u16], w: usize, active: &[u16], d: u8, a: u8, f: impl Fn(u16) -> u16) {
    debug_assert!(usize::from(d) != 0 || usize::from(d) == usize::from(DISCARD_SLOT) || d != 0);
    let a0 = usize::from(a) * w;
    let d0 = usize::from(d) * w;
    if active.len() == w {
        let mut ta = [0u16; MAX_LANES];
        ta[..w].copy_from_slice(&regs[a0..a0 + w]);
        for (dst, &x) in regs[d0..d0 + w].iter_mut().zip(&ta[..w]) {
            *dst = f(x);
        }
    } else {
        for &l in active {
            let l = usize::from(l);
            regs[d0 + l] = f(regs[a0 + l]);
        }
    }
}

/// Two-source variant of [`lanewise1`].
#[inline(always)]
fn lanewise2(
    regs: &mut [u16],
    w: usize,
    active: &[u16],
    d: u8,
    a: u8,
    b: u8,
    f: impl Fn(u16, u16) -> u16,
) {
    let a0 = usize::from(a) * w;
    let b0 = usize::from(b) * w;
    let d0 = usize::from(d) * w;
    if active.len() == w {
        let mut ta = [0u16; MAX_LANES];
        let mut tb = [0u16; MAX_LANES];
        ta[..w].copy_from_slice(&regs[a0..a0 + w]);
        tb[..w].copy_from_slice(&regs[b0..b0 + w]);
        for ((dst, &x), &y) in regs[d0..d0 + w].iter_mut().zip(&ta[..w]).zip(&tb[..w]) {
            *dst = f(x, y);
        }
    } else {
        for &l in active {
            let l = usize::from(l);
            regs[d0 + l] = f(regs[a0 + l], regs[b0 + l]);
        }
    }
}

/// Bitmask of active lanes whose branch condition holds.
#[inline(always)]
fn cond_mask(regs: &[u16], w: usize, active: &[u16], cond: Cond, a: u8, b: u8) -> u64 {
    let a0 = usize::from(a) * w;
    let b0 = usize::from(b) * w;
    let mut mask = 0u64;
    for &l in active {
        let l = usize::from(l);
        let x = regs[a0 + l];
        let y = regs[b0 + l];
        let t = match cond {
            Cond::Eq => x == y,
            Cond::Ne => x != y,
            Cond::Lt => (x as i16) < (y as i16),
            Cond::Ge => (x as i16) >= (y as i16),
            Cond::Ltu => x < y,
            Cond::Geu => x >= y,
        };
        mask |= u64::from(t) << l;
    }
    mask
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CycleModel, EnergyModel, DEFAULT_DMEM_WORDS};
    use nvp_isa::asm::assemble;

    fn image_of(src: &str) -> Arc<MachineImage> {
        let p = assemble(src).expect("assembles");
        Arc::new(
            MachineImage::build(
                &p,
                DEFAULT_DMEM_WORDS,
                CycleModel::default(),
                EnergyModel::default(),
            )
            .expect("builds"),
        )
    }

    fn assert_lane_matches_scalar(lane: &Machine, scalar: &Machine, what: &str) {
        assert_eq!(lane.snapshot(), scalar.snapshot(), "{what}");
        assert_eq!(lane.halted(), scalar.halted(), "{what}");
        assert_eq!(lane.dmem(), scalar.dmem(), "{what}");
        assert_eq!(lane.out_log(), scalar.out_log(), "{what}");
        let cl = lane.counters();
        let cs = scalar.counters();
        assert_eq!(cl.instructions, cs.instructions, "{what}");
        assert_eq!(cl.cycles, cs.cycles, "{what}");
        assert_eq!(cl.energy_j.to_bits(), cs.energy_j.to_bits(), "energy, {what}");
        assert_eq!(cl.class_counts, cs.class_counts, "{what}");
        assert_eq!(cl.branches_taken, cs.branches_taken, "{what}");
    }

    /// Drives a lane group and per-lane scalar machines to completion
    /// with the same per-call budget and asserts bit-identical lanes.
    fn assert_lanes_equivalent(src: &str, lane_inputs: &[&[(u8, u16)]], chunk: u64) {
        let image = image_of(src);
        let width = lane_inputs.len();
        let mut lm = LaneMachine::new(&image, width);
        for (l, ivs) in lane_inputs.iter().enumerate() {
            for &(port, v) in ivs.iter() {
                lm.set_input(l, port, v);
            }
        }
        let mut rounds = 0u32;
        while !lm.all_done() {
            lm.run(chunk);
            rounds += 1;
            assert!(rounds < 1_000_000, "lane group failed to converge");
        }
        for (l, ivs) in lane_inputs.iter().enumerate() {
            let mut scalar = Machine::from_image(&image);
            for &(port, v) in ivs.iter() {
                scalar.set_input(port, v);
            }
            let scalar_err = loop {
                match scalar.run_blocks(chunk) {
                    Ok(s) if s.halted => break None,
                    Ok(_) => {}
                    Err(e) => break Some(e),
                }
            };
            assert_eq!(
                scalar_err.as_ref(),
                lm.lane_error(l),
                "lane {l} fault disposition (chunk {chunk})"
            );
            let lane = lm.extract(l);
            assert_lane_matches_scalar(&lane, &scalar, &format!("lane {l}, chunk {chunk}"));
        }
    }

    /// Input port 0 selects an arm each iteration; port 1 scales work.
    const DIVERGE_SRC: &str = "
        li r1, 300
    loop:
        in r2, 0
        beqz r2, even
        addi r3, r3, 3
        beq r0, r0, join
    even:
        addi r4, r4, 5
    join:
        out 1, r3
        addi r1, r1, -1
        bnez r1, loop
        sw r3, 0(r0)
        sw r4, 1(r0)
        halt
    ";

    #[test]
    fn converged_lanes_match_scalar() {
        // Identical inputs: lanes stay converged the whole run.
        for chunk in [3, 64, 10_000] {
            assert_lanes_equivalent(
                DIVERGE_SRC,
                &[&[(0, 1)], &[(0, 1)], &[(0, 1)], &[(0, 1)]],
                chunk,
            );
        }
    }

    #[test]
    fn divergent_lanes_peel_and_match_scalar() {
        for chunk in [5, 97, 10_000] {
            assert_lanes_equivalent(
                DIVERGE_SRC,
                &[&[(0, 0)], &[(0, 1)], &[(0, 0)], &[(0, 1)], &[(0, 1)]],
                chunk,
            );
        }
    }

    #[test]
    fn divergence_is_counted() {
        let image = image_of(DIVERGE_SRC);
        let mut lm = LaneMachine::new(&image, 2);
        lm.set_input(0, 0, 0);
        lm.set_input(1, 0, 1);
        while !lm.all_done() {
            lm.run(100_000);
        }
        let stats = lm.stats();
        assert!(stats.divergence_peels >= 1, "{stats:?}");
        assert!(stats.lockstep_blocks > 0, "{stats:?}");
        assert!(lm.occupancy() > 0.0 && lm.occupancy() <= 1.0);
    }

    /// Lane address comes from input port 2: in-range lanes complete,
    /// out-of-range lanes fault at the `lw`.
    const FAULT_SRC: &str = "
        in r1, 2
        lw r2, 0(r1)
        addi r2, r2, 1
        sw r2, 2(r0)
        halt
    ";

    #[test]
    fn faulting_lanes_peel_with_exact_error() {
        for chunk in [1, 3, 1000] {
            assert_lanes_equivalent(
                FAULT_SRC,
                &[&[(2, 0)], &[(2, 0x7FFF)], &[(2, 5)], &[(2, 0x6000)]],
                chunk,
            );
        }
    }

    #[test]
    fn jalr_spread_peels_after_terminator() {
        // Each lane's jalr target comes from port 0: two land on one
        // arm, one on the other.
        let src = "
            in r1, 0
            jalr r0, r1, 0
            halt
            li r2, 11
            halt
            li r2, 22
            halt
        ";
        for chunk in [2, 7, 1000] {
            assert_lanes_equivalent(src, &[&[(0, 3)], &[(0, 5)], &[(0, 3)]], chunk);
        }
    }

    #[test]
    fn extract_is_nondestructive() {
        let image = image_of(DIVERGE_SRC);
        let mut lm = LaneMachine::new(&image, 2);
        lm.set_input(0, 0, 1);
        lm.set_input(1, 0, 1);
        lm.run(50);
        let a = lm.extract(0);
        let b = lm.extract(0);
        assert_eq!(a.snapshot(), b.snapshot());
        assert_eq!(a.out_log(), b.out_log());
        while !lm.all_done() {
            lm.run(50);
        }
        assert!(lm.extract(0).halted());
    }

    #[test]
    fn width_bounds_enforced() {
        let image = image_of("halt");
        let lm = LaneMachine::new(&image, MAX_LANES);
        assert_eq!(lm.width(), MAX_LANES);
    }

    #[test]
    #[should_panic(expected = "lane width")]
    fn zero_width_rejected() {
        let image = image_of("halt");
        let _ = LaneMachine::new(&image, 0);
    }
}
