//! # nvp-sim — cycle- and energy-annotated NV16 simulator
//!
//! A deterministic functional simulator for [`nvp_isa`] programs. Every
//! executed instruction is charged a cycle count (from [`CycleModel`]) and
//! an energy cost in joules (from [`EnergyModel`]), so the system-level
//! nonvolatile-processor simulator in `nvp-core` can convert harvested
//! energy into forward progress exactly the way the published NVP
//! frameworks do (an RTL/functional core driven by a system-level energy
//! simulator).
//!
//! The default energy model is calibrated to the measured operating point
//! reported for wearable NVP prototypes: **0.209 mW at 1 MHz** (≈209 pJ per
//! cycle, averaged across the instruction mix).
//!
//! ## Example
//!
//! ```
//! use nvp_isa::asm::assemble;
//! use nvp_sim::Machine;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let program = assemble(
//!     "li r1, 3\nli r2, 4\nmul r3, r1, r2\nout 0, r3\nhalt",
//! )?;
//! let mut m = Machine::new(&program)?;
//! m.run(1_000)?;
//! assert!(m.halted());
//! assert_eq!(m.out_log(), &[(0, 12)]);
//! assert!(m.counters().energy_j > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod checkpoint;
mod energy;
mod lanes;
mod machine;

pub use checkpoint::{crc32_bytes, crc32_words, torn_prefix_words, Checkpoint, CHECKPOINT_WORDS};
pub use energy::{CycleModel, EnergyModel, InstClass};
pub use lanes::{LaneMachine, LaneStats, MAX_LANES};
pub use machine::{
    ArchState, BlockStats, Counters, Machine, MachineImage, SimError, Step, SuperblockStats,
};

/// Default installed data-memory size in 16-bit words (8 Ki-words = 16 KiB).
pub const DEFAULT_DMEM_WORDS: usize = 8192;
