//! The NV16 machine: architectural state, execution, accounting.

use std::fmt;
use std::sync::Arc;

use nvp_isa::blocks::branch_target;
use nvp_isa::{DecodeError, Inst, Program, Reg};
use serde::{Deserialize, Serialize};

use crate::block::{BlockTable, Cond, MicroKind, MicroOp, Term, NO_PLAN, NUM_SLOTS};
use crate::{CycleModel, EnergyModel, InstClass, DEFAULT_DMEM_WORDS};

/// The volatile architectural state an NVP must back up: the register file
/// and the program counter.
///
/// [`ArchState::BITS`] is the raw payload size used by backup-cost models;
/// platform models add their own pipeline/SFR overhead on top.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ArchState {
    /// Register file contents (`r0` slot is always zero).
    pub regs: [u16; 16],
    /// Program counter (word address).
    pub pc: u32,
}

impl ArchState {
    /// Number of state bits in the snapshot payload (16×16-bit registers +
    /// a 32-bit program counter).
    pub const BITS: u32 = 16 * 16 + 32;
}

/// Per-run performance and energy counters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Counters {
    /// Instructions executed.
    pub instructions: u64,
    /// Clock cycles consumed.
    pub cycles: u64,
    /// Core energy consumed, in joules.
    pub energy_j: f64,
    /// Executed-instruction counts per [`InstClass`] (indexed by
    /// [`InstClass::index`]).
    pub class_counts: [u64; 9],
    /// Taken conditional branches.
    pub branches_taken: u64,
}

impl Default for Counters {
    fn default() -> Self {
        Counters {
            instructions: 0,
            cycles: 0,
            energy_j: 0.0,
            class_counts: [0; 9],
            branches_taken: 0,
        }
    }
}

impl Counters {
    /// Count of executed instructions in the given class.
    #[must_use]
    pub fn count(&self, class: InstClass) -> u64 {
        self.class_counts[class.index()]
    }
}

/// A predecoded code word: the instruction plus everything the
/// per-step hot path would otherwise recompute from it — its class and
/// the cycle/energy cost of both branch outcomes (identical for
/// non-branches). Built once per imem word at load time.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Decoded {
    pub(crate) inst: Inst,
    pub(crate) class: InstClass,
    pub(crate) cycles_not_taken: u32,
    pub(crate) cycles_taken: u32,
    pub(crate) energy_not_taken_j: f64,
    pub(crate) energy_taken_j: f64,
}

impl Decoded {
    fn new(inst: Inst, cycle_model: &CycleModel, energy_model: &EnergyModel) -> Decoded {
        let class = InstClass::of(&inst);
        let cycles_not_taken = cycle_model.cycles(class, false);
        let cycles_taken = cycle_model.cycles(class, true);
        Decoded {
            inst,
            class,
            cycles_not_taken,
            cycles_taken,
            energy_not_taken_j: energy_model.energy(class, cycles_not_taken),
            energy_taken_j: energy_model.energy(class, cycles_taken),
        }
    }
}

/// Aggregate outcome of a bounded run of consecutive steps (see
/// [`Machine::run_block`]).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BlockStats {
    /// Instructions executed in the block.
    pub executed: u64,
    /// Total cycles charged.
    pub cycles: u64,
    /// Total energy charged, joules.
    pub energy_j: f64,
    /// `true` if the machine is halted after the block.
    pub halted: bool,
    /// `true` if the block ended on a `ckpt` instruction.
    pub checkpoint: bool,
}

/// The outcome of executing a single instruction.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// Cycles charged.
    pub cycles: u32,
    /// Energy charged, in joules.
    pub energy_j: f64,
    /// `true` if the instruction was `halt` (or the machine was already
    /// halted, in which case `cycles == 0`).
    pub halted: bool,
    /// `true` if the instruction was `ckpt` (software checkpoint hint).
    pub checkpoint: bool,
    /// Class of the executed instruction.
    pub class: InstClass,
}

/// Errors raised by program loading or execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimError {
    /// The program counter left the code image.
    PcOutOfRange {
        /// Offending word address.
        pc: u32,
    },
    /// A load/store addressed beyond installed data memory.
    MemOutOfRange {
        /// Offending data word address.
        addr: u16,
        /// Program counter of the faulting instruction.
        pc: u32,
    },
    /// A code word failed to decode (hand-built images only).
    Decode {
        /// Word address of the undecodable word.
        pc: u32,
        /// Underlying decode failure.
        source: DecodeError,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::PcOutOfRange { pc } => write!(f, "program counter {pc} out of range"),
            SimError::MemOutOfRange { addr, pc } => {
                write!(f, "data address {addr:#06x} out of range at pc {pc}")
            }
            SimError::Decode { pc, source } => write!(f, "at pc {pc}: {source}"),
        }
    }
}

impl std::error::Error for SimError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SimError::Decode { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The immutable, shareable part of a loaded program: predecoded code,
/// fused block plans, worst-case step costs, and the initial data-memory
/// contents (zero-fill plus data segments).
///
/// Building an image does all the per-program work — decode, block
/// partitioning, micro-op lowering — exactly once; any number of
/// [`Machine`]s (or [`LaneMachine`](crate::LaneMachine) lanes) can then
/// be instantiated from the same `Arc`'d image without re-decoding.
/// Monte-Carlo campaigns that run thousands of same-program trials share
/// one image across every trial and every power-failure rebuild.
#[derive(Debug)]
pub struct MachineImage {
    pub(crate) code: Vec<Decoded>,
    pub(crate) blocks: BlockTable,
    pub(crate) max_step_cycles: u32,
    pub(crate) max_step_energy_j: f64,
    pub(crate) entry: u32,
    pub(crate) dmem_init: Vec<u16>,
}

impl MachineImage {
    /// Decodes and lowers a program into a reusable image.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Decode`] if the image contains an undecodable
    /// word and [`SimError::MemOutOfRange`] if a data segment exceeds the
    /// installed data memory.
    pub fn build(
        program: &Program,
        dmem_words: usize,
        cycle_model: CycleModel,
        energy_model: EnergyModel,
    ) -> Result<MachineImage, SimError> {
        let mut code = Vec::with_capacity(program.code().len());
        for (pc, &word) in program.code().iter().enumerate() {
            let inst =
                Inst::decode(word).map_err(|source| SimError::Decode { pc: pc as u32, source })?;
            code.push(Decoded::new(inst, &cycle_model, &energy_model));
        }
        // Worst-case single-step cost over this image, used by platform
        // models to bound how many instructions can safely run as one
        // batch before re-checking energy/time thresholds.
        let max_step_cycles =
            code.iter().map(|d| d.cycles_not_taken.max(d.cycles_taken)).max().unwrap_or(1);
        let max_step_energy_j =
            code.iter().map(|d| d.energy_not_taken_j.max(d.energy_taken_j)).fold(0.0f64, f64::max);
        let mut dmem_init = vec![0u16; dmem_words];
        for seg in program.data_segments() {
            let start = usize::from(seg.addr);
            let end = start + seg.words.len();
            if end > dmem_init.len() {
                return Err(SimError::MemOutOfRange {
                    addr: (end - 1).min(u16::MAX as usize) as u16,
                    pc: 0,
                });
            }
            dmem_init[start..end].copy_from_slice(&seg.words);
        }
        let blocks = BlockTable::build(&code, program.entry());
        Ok(MachineImage {
            code,
            blocks,
            max_step_cycles,
            max_step_energy_j,
            entry: program.entry(),
            dmem_init,
        })
    }

    /// Entry-point word address.
    #[must_use]
    pub fn entry(&self) -> u32 {
        self.entry
    }

    /// Installed data-memory size, in words.
    #[must_use]
    pub fn dmem_words(&self) -> usize {
        self.dmem_init.len()
    }

    /// Number of instructions in the image.
    #[must_use]
    pub fn code_len(&self) -> usize {
        self.code.len()
    }
}

/// Cumulative statistics for the superblock tier of one [`Machine`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SuperblockStats {
    /// Chains formed when the profiling warm-up completed (0 until then).
    pub chains_formed: u64,
    /// Dispatches that entered execution at a chain head.
    pub chain_runs: u64,
    /// Blocks retired through chain links (head included).
    pub chained_blocks: u64,
    /// Early exits out of a chain: a link's entry guard failed (control
    /// left the hot trace) or the remaining budget could not fit the next
    /// link, falling back to the block tier.
    pub side_exits: u64,
}

/// Per-machine superblock state: warm-up profile, built chains, stats.
///
/// Profiling counts block executions and inter-block edges at streak
/// granularity; once [`SB_WARMUP_EXECS`] block executions are observed
/// the hot chains are built (once) and dispatch switches to them.
#[derive(Debug, Clone, Default)]
pub(crate) struct SuperState {
    execs: Vec<u64>,
    edges: Vec<[(u32, u64); 2]>,
    ticks: u64,
    built: bool,
    chain_elems: Vec<u32>,
    chain_span: Vec<(u32, u32)>,
    stats: SuperblockStats,
}

/// Block executions observed before hot chains are built.
const SB_WARMUP_EXECS: u64 = 512;

impl SuperState {
    /// (Re)sizes the profile arrays for an image with `nplans` blocks.
    fn ensure(&mut self, nplans: usize) {
        if self.execs.len() != nplans {
            self.execs = vec![0; nplans];
            self.edges = vec![[(NO_PLAN, 0); 2]; nplans];
            self.chain_span = vec![(0, 0); nplans];
            self.chain_elems.clear();
            self.ticks = 0;
            self.built = false;
        }
    }

    /// The chain rooted at `plan`, as a span into `chain_elems`, if one
    /// was built.
    #[inline]
    fn chain_at(&self, plan: u32) -> Option<(u32, u32)> {
        if !self.built {
            return None;
        }
        let (start, len) = self.chain_span[plan as usize];
        (len >= 2).then_some((start, len))
    }

    /// Records one streak: `repeats` back-to-back executions of `plan`
    /// followed by an exit towards `succ` (or [`NO_PLAN`] when the run
    /// stopped). Builds the chains once warm.
    fn record(&mut self, plan: u32, repeats: u64, succ: u32, table: &BlockTable) {
        self.execs[plan as usize] += repeats;
        self.ticks += repeats;
        if repeats > 1 {
            self.record_edge(plan, plan, repeats - 1);
        }
        if succ != NO_PLAN {
            self.record_edge(plan, succ, 1);
        }
        if !self.built && self.ticks >= SB_WARMUP_EXECS {
            let (elems, span) = table.build_chains(&self.execs, &self.edges);
            self.stats.chains_formed = span.iter().filter(|&&(_, len)| len >= 2).count() as u64;
            self.chain_elems = elems;
            self.chain_span = span;
            self.built = true;
        }
    }

    /// Two-way counters per source block: enough to find a dominant
    /// successor without unbounded edge maps.
    fn record_edge(&mut self, from: u32, to: u32, n: u64) {
        let e = &mut self.edges[from as usize];
        if e[0].0 == to {
            e[0].1 += n;
        } else if e[1].0 == to {
            e[1].1 += n;
            if e[1].1 > e[0].1 {
                e.swap(0, 1);
            }
        } else if e[0].0 == NO_PLAN {
            e[0] = (to, n);
        } else if e[1].0 == NO_PLAN || n > e[1].1 {
            e[1] = (to, n);
        }
    }
}

/// A deterministic NV16 machine instance.
///
/// The machine separates *volatile* state (registers + PC, lost on a power
/// failure unless backed up) from *data memory*, whose volatility is a
/// platform property: NVPs keep main memory in NVM, while the conventional
/// baselines lose SRAM contents. Platform models in `nvp-core` call
/// [`snapshot`](Machine::snapshot) / [`restore`](Machine::restore) /
/// [`reset_volatile`](Machine::reset_volatile) to implement their policies.
///
/// The immutable per-program tables live in an `Arc`'d [`MachineImage`];
/// cloning a machine or building one [`from_image`](Machine::from_image)
/// shares them.
#[derive(Debug, Clone)]
pub struct Machine {
    image: Arc<MachineImage>,
    regs: [u16; 16],
    pc: u32,
    halted: bool,
    dmem: Vec<u16>,
    inputs: [u16; 16],
    out_log: Vec<(u8, u16)>,
    counters: Counters,
    sb: SuperState,
}

impl Machine {
    /// Creates a machine with default memory size and cost models.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Decode`] if the image contains an undecodable
    /// word and [`SimError::MemOutOfRange`] if a data segment exceeds the
    /// installed data memory.
    pub fn new(program: &Program) -> Result<Machine, SimError> {
        Machine::with_config(
            program,
            DEFAULT_DMEM_WORDS,
            CycleModel::default(),
            EnergyModel::default(),
        )
    }

    /// Creates a machine with explicit memory size and cost models.
    ///
    /// # Errors
    ///
    /// See [`Machine::new`].
    pub fn with_config(
        program: &Program,
        dmem_words: usize,
        cycle_model: CycleModel,
        energy_model: EnergyModel,
    ) -> Result<Machine, SimError> {
        let image = MachineImage::build(program, dmem_words, cycle_model, energy_model)?;
        Ok(Machine::from_image(&Arc::new(image)))
    }

    /// Creates a fresh machine (reset state, initial data memory) from a
    /// prebuilt shared image, skipping decode and block lowering.
    #[must_use]
    pub fn from_image(image: &Arc<MachineImage>) -> Machine {
        Machine {
            image: Arc::clone(image),
            regs: [0; 16],
            pc: image.entry,
            halted: false,
            dmem: image.dmem_init.clone(),
            inputs: [0; 16],
            out_log: Vec::new(),
            counters: Counters::default(),
            sb: SuperState::default(),
        }
    }

    /// Assembles a machine from lane-extracted state (same image).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_lane_parts(
        image: Arc<MachineImage>,
        regs: [u16; 16],
        pc: u32,
        halted: bool,
        dmem: Vec<u16>,
        inputs: [u16; 16],
        out_log: Vec<(u8, u16)>,
        counters: Counters,
    ) -> Machine {
        Machine {
            image,
            regs,
            pc,
            halted,
            dmem,
            inputs,
            out_log,
            counters,
            sb: SuperState::default(),
        }
    }

    /// The shared program image this machine executes.
    #[must_use]
    pub fn image(&self) -> &Arc<MachineImage> {
        &self.image
    }

    /// Moves the superblock warm-up profile, built chains, and stats from
    /// `donor` into `self`, so a machine rebuilt after a power failure
    /// (same image) keeps its learned hot traces instead of re-warming.
    pub fn adopt_profile_from(&mut self, donor: &mut Machine) {
        debug_assert!(
            Arc::ptr_eq(&self.image, &donor.image),
            "superblock profiles are only portable between machines sharing an image"
        );
        self.sb = std::mem::take(&mut donor.sb);
    }

    /// Cumulative superblock-tier statistics for this machine.
    #[must_use]
    pub fn superblock_stats(&self) -> SuperblockStats {
        self.sb.stats
    }

    /// Executes one instruction.
    ///
    /// A halted machine returns a zero-cost [`Step`] with `halted == true`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::PcOutOfRange`] or [`SimError::MemOutOfRange`]
    /// on wild control flow or memory accesses.
    pub fn step(&mut self) -> Result<Step, SimError> {
        if self.halted {
            return Ok(Step {
                cycles: 0,
                energy_j: 0.0,
                halted: true,
                checkpoint: false,
                class: InstClass::System,
            });
        }
        let pc = self.pc;
        let decoded = *self.image.code.get(pc as usize).ok_or(SimError::PcOutOfRange { pc })?;
        let class = decoded.class;
        let mut taken = false;
        let mut checkpoint = false;
        let mut next_pc = pc + 1;

        use Inst::*;
        match decoded.inst {
            Add { rd, rs1, rs2 } => self.wr(rd, self.rd(rs1).wrapping_add(self.rd(rs2))),
            Sub { rd, rs1, rs2 } => self.wr(rd, self.rd(rs1).wrapping_sub(self.rd(rs2))),
            And { rd, rs1, rs2 } => self.wr(rd, self.rd(rs1) & self.rd(rs2)),
            Or { rd, rs1, rs2 } => self.wr(rd, self.rd(rs1) | self.rd(rs2)),
            Xor { rd, rs1, rs2 } => self.wr(rd, self.rd(rs1) ^ self.rd(rs2)),
            Sll { rd, rs1, rs2 } => self.wr(rd, self.rd(rs1) << (self.rd(rs2) & 0xF)),
            Srl { rd, rs1, rs2 } => self.wr(rd, self.rd(rs1) >> (self.rd(rs2) & 0xF)),
            Sra { rd, rs1, rs2 } => {
                self.wr(rd, ((self.rd(rs1) as i16) >> (self.rd(rs2) & 0xF)) as u16);
            }
            Mul { rd, rs1, rs2 } => {
                let p = i32::from(self.rd(rs1) as i16) * i32::from(self.rd(rs2) as i16);
                self.wr(rd, p as u16);
            }
            Mulh { rd, rs1, rs2 } => {
                let p = i32::from(self.rd(rs1) as i16) * i32::from(self.rd(rs2) as i16);
                self.wr(rd, (p >> 16) as u16);
            }
            Slt { rd, rs1, rs2 } => {
                self.wr(rd, u16::from((self.rd(rs1) as i16) < (self.rd(rs2) as i16)));
            }
            Sltu { rd, rs1, rs2 } => self.wr(rd, u16::from(self.rd(rs1) < self.rd(rs2))),
            Divu { rd, rs1, rs2 } => {
                let q = self.rd(rs1).checked_div(self.rd(rs2)).unwrap_or(0xFFFF);
                self.wr(rd, q);
            }
            Remu { rd, rs1, rs2 } => {
                let d = self.rd(rs2);
                self.wr(rd, if d == 0 { self.rd(rs1) } else { self.rd(rs1) % d });
            }
            Addi { rd, rs1, imm } => self.wr(rd, self.rd(rs1).wrapping_add(imm as u16)),
            Andi { rd, rs1, imm } => self.wr(rd, self.rd(rs1) & imm),
            Ori { rd, rs1, imm } => self.wr(rd, self.rd(rs1) | imm),
            Xori { rd, rs1, imm } => self.wr(rd, self.rd(rs1) ^ imm),
            Slli { rd, rs1, shamt } => self.wr(rd, self.rd(rs1) << shamt),
            Srli { rd, rs1, shamt } => self.wr(rd, self.rd(rs1) >> shamt),
            Srai { rd, rs1, shamt } => self.wr(rd, ((self.rd(rs1) as i16) >> shamt) as u16),
            Slti { rd, rs1, imm } => self.wr(rd, u16::from((self.rd(rs1) as i16) < imm)),
            Li { rd, imm } => self.wr(rd, imm),
            Lw { rd, rs1, offset } => {
                let addr = self.rd(rs1).wrapping_add(offset as u16);
                let value = self.read_word(addr).ok_or(SimError::MemOutOfRange { addr, pc })?;
                self.wr(rd, value);
            }
            Sw { rs2, rs1, offset } => {
                let addr = self.rd(rs1).wrapping_add(offset as u16);
                let value = self.rd(rs2);
                if usize::from(addr) >= self.dmem.len() {
                    return Err(SimError::MemOutOfRange { addr, pc });
                }
                self.dmem[usize::from(addr)] = value;
            }
            Beq { rs1, rs2, offset } => {
                taken = self.rd(rs1) == self.rd(rs2);
                if taken {
                    next_pc = branch_target(pc, offset);
                }
            }
            Bne { rs1, rs2, offset } => {
                taken = self.rd(rs1) != self.rd(rs2);
                if taken {
                    next_pc = branch_target(pc, offset);
                }
            }
            Blt { rs1, rs2, offset } => {
                taken = (self.rd(rs1) as i16) < (self.rd(rs2) as i16);
                if taken {
                    next_pc = branch_target(pc, offset);
                }
            }
            Bge { rs1, rs2, offset } => {
                taken = (self.rd(rs1) as i16) >= (self.rd(rs2) as i16);
                if taken {
                    next_pc = branch_target(pc, offset);
                }
            }
            Bltu { rs1, rs2, offset } => {
                taken = self.rd(rs1) < self.rd(rs2);
                if taken {
                    next_pc = branch_target(pc, offset);
                }
            }
            Bgeu { rs1, rs2, offset } => {
                taken = self.rd(rs1) >= self.rd(rs2);
                if taken {
                    next_pc = branch_target(pc, offset);
                }
            }
            Jal { rd, target } => {
                self.wr(rd, (pc + 1) as u16);
                next_pc = target;
            }
            Jalr { rd, rs1, offset } => {
                let target = u32::from(self.rd(rs1).wrapping_add(offset as u16));
                self.wr(rd, (pc + 1) as u16);
                next_pc = target;
            }
            Nop => {}
            Halt => self.halted = true,
            Ckpt => checkpoint = true,
            Out { port, rs1 } => self.out_log.push((port, self.rd(rs1))),
            In { rd, port } => self.wr(rd, self.inputs[usize::from(port & 0xF)]),
        }

        let (cycles, energy) = if taken {
            (decoded.cycles_taken, decoded.energy_taken_j)
        } else {
            (decoded.cycles_not_taken, decoded.energy_not_taken_j)
        };
        self.counters.instructions += 1;
        self.counters.cycles += u64::from(cycles);
        self.counters.energy_j += energy;
        self.counters.class_counts[class.index()] += 1;
        if taken {
            self.counters.branches_taken += 1;
        }
        if !self.halted {
            self.pc = next_pc;
        }
        Ok(Step { cycles, energy_j: energy, halted: self.halted, checkpoint, class })
    }

    /// Runs up to `max_insts` instructions or until `halt`.
    ///
    /// Returns the number of instructions executed.
    ///
    /// # Errors
    ///
    /// Propagates the first execution fault (see [`Machine::step`]).
    pub fn run(&mut self, max_insts: u64) -> Result<u64, SimError> {
        let mut executed = 0;
        while executed < max_insts && !self.halted {
            self.step()?;
            executed += 1;
        }
        Ok(executed)
    }

    /// Runs up to `max_insts` instructions, stopping early on `halt` or
    /// `ckpt`, and returns the block's aggregate cost instead of
    /// per-step values — platform models use this to consult their
    /// energy frontend once per block. Bound `max_insts` with
    /// [`max_step_cycles`](Machine::max_step_cycles) /
    /// [`max_step_energy_j`](Machine::max_step_energy_j) to keep
    /// threshold checks exact.
    ///
    /// # Errors
    ///
    /// Propagates the first execution fault (see [`Machine::step`]).
    pub fn run_block(&mut self, max_insts: u64) -> Result<BlockStats, SimError> {
        let mut stats = BlockStats::default();
        while stats.executed < max_insts && !self.halted {
            let step = self.step()?;
            stats.executed += 1;
            stats.cycles += u64::from(step.cycles);
            stats.energy_j += step.energy_j;
            if step.checkpoint {
                stats.checkpoint = true;
                break;
            }
        }
        stats.halted = self.halted;
        Ok(stats)
    }

    /// Like [`run_block`](Machine::run_block), but executes whole basic
    /// blocks through the fused block plans built at load time instead
    /// of dispatching instruction by instruction.
    ///
    /// Straight-line block bodies run against a local register file with
    /// no per-step counter stores; integer accounting (instructions,
    /// cycles, class counts) is applied as fused adds per block. Energy
    /// is still accumulated one addition per instruction in program
    /// order, because f64 addition is not associative — results are
    /// bit-identical to an equivalent sequence of [`step`](Machine::step)
    /// calls, including [`Counters`] and the returned [`BlockStats`].
    ///
    /// The engine falls back to [`step`](Machine::step) whenever a block
    /// cannot run whole: at non-leader addresses (entered via `jalr` or
    /// a mid-block [`restore`](Machine::restore)) and when fewer than a
    /// full block's instructions remain in `max_insts`. Execution stops
    /// early on `halt`, on `ckpt` (with `checkpoint` set, matching
    /// `run_block`), or on a fault.
    ///
    /// # Errors
    ///
    /// Propagates the first execution fault (see [`Machine::step`]);
    /// architectural state and counters reflect every instruction
    /// retired before the fault, exactly as in step mode.
    pub fn run_blocks(&mut self, max_insts: u64) -> Result<BlockStats, SimError> {
        self.run_fused::<false>(max_insts)
    }

    /// Like [`run_blocks`](Machine::run_blocks), plus a profile-directed
    /// superblock tier stacked on top: during warm-up the engine counts
    /// block executions and inter-block edges; once warm it fuses hot
    /// block *chains* across static branches and `jal` targets and
    /// dispatches whole chains without returning to the outer loop
    /// between links. Every link carries a side-exit guard — if control
    /// leaves the recorded trace or the budget cannot fit the next link,
    /// the chain exits early and the block tier (with its streak
    /// batching) resumes exactly where step mode would be.
    ///
    /// Results are bit-identical to [`run_blocks`](Machine::run_blocks)
    /// and therefore to [`step`](Machine::step), including [`Counters`],
    /// energy bit patterns, and fault accounting. See
    /// [`superblock_stats`](Machine::superblock_stats) for chain/side-exit
    /// counts and [`adopt_profile_from`](Machine::adopt_profile_from) for
    /// carrying the learned profile across power-failure rebuilds.
    ///
    /// # Errors
    ///
    /// Propagates the first execution fault (see [`Machine::step`]).
    pub fn run_superblocks(&mut self, max_insts: u64) -> Result<BlockStats, SimError> {
        self.run_fused::<true>(max_insts)
    }

    /// The fused execution engine behind both block-level tiers. `SB`
    /// selects the superblock tier (profiling + chain dispatch) at
    /// compile time so the plain block tier pays nothing for it.
    fn run_fused<const SB: bool>(&mut self, max_insts: u64) -> Result<BlockStats, SimError> {
        let mut stats = BlockStats::default();
        // Local register file (slot 16 absorbs r0 writes) and energy
        // accumulators, synced back on every exit and around fallbacks.
        let mut lr = [0u16; NUM_SLOTS];
        lr[..16].copy_from_slice(&self.regs);
        let mut c_energy = self.counters.energy_j;
        let mut s_energy = 0.0f64;
        if SB {
            self.sb.ensure(self.image.blocks.plans.len());
        }

        while stats.executed < max_insts && !self.halted {
            let plan_idx =
                self.image.blocks.leader.get(self.pc as usize).copied().unwrap_or(NO_PLAN);
            let whole_block_fits = plan_idx != NO_PLAN
                && self.image.blocks.plans[plan_idx as usize].insts <= max_insts - stats.executed;
            if !whole_block_fits {
                // Fallback: single-step with state synced to the machine.
                self.regs.copy_from_slice(&lr[..16]);
                self.counters.energy_j = c_energy;
                let step = self.step()?;
                lr[..16].copy_from_slice(&self.regs);
                c_energy = self.counters.energy_j;
                stats.executed += 1;
                stats.cycles += u64::from(step.cycles);
                s_energy += step.energy_j;
                if step.checkpoint {
                    stats.checkpoint = true;
                    break;
                }
                continue;
            }

            if SB {
                if let Some((chain_start, chain_len)) = self.sb.chain_at(plan_idx) {
                    self.sb.stats.chain_runs += 1;
                    for k in 0..chain_len {
                        let q = self.sb.chain_elems[(chain_start + k) as usize] as usize;
                        let plan = self.image.blocks.plans[q];
                        // Side-exit guard: control must still be on the
                        // recorded trace and the whole link must fit the
                        // remaining budget; otherwise fall back to the
                        // block tier (the outer loop re-dispatches).
                        if k > 0
                            && (self.pc != plan.start || plan.insts > max_insts - stats.executed)
                        {
                            self.sb.stats.side_exits += 1;
                            break;
                        }
                        let ops = &self.image.blocks.ops
                            [plan.op_start as usize..(plan.op_start + plan.op_len) as usize];
                        if let Some((done, addr)) = exec_body(
                            ops,
                            &mut lr,
                            &mut self.dmem,
                            &self.inputs,
                            &mut self.out_log,
                            &mut c_energy,
                            &mut s_energy,
                        ) {
                            // Partial link: account the retired prefix
                            // exactly as step mode would, then report the
                            // fault at its pc.
                            self.counters.instructions += done as u64;
                            for op in &ops[..done] {
                                self.counters.cycles += u64::from(op.cycles);
                                self.counters.class_counts[usize::from(op.class_idx)] += 1;
                            }
                            self.counters.energy_j = c_energy;
                            self.regs.copy_from_slice(&lr[..16]);
                            let pc = plan.start + done as u32;
                            self.pc = pc;
                            return Err(SimError::MemOutOfRange { addr, pc });
                        }
                        let t = exec_term(
                            &plan.term,
                            &mut lr,
                            plan.start + plan.op_len,
                            &mut c_energy,
                            &mut s_energy,
                        );
                        self.counters.instructions += plan.insts;
                        self.counters.cycles += plan.body_cycles + u64::from(t.cycles);
                        stats.executed += plan.insts;
                        stats.cycles += plan.body_cycles + u64::from(t.cycles);
                        for (count, add) in
                            self.counters.class_counts.iter_mut().zip(&plan.body_class_counts)
                        {
                            *count += add;
                        }
                        if !matches!(plan.term, Term::FallThrough { .. }) {
                            self.counters.class_counts[usize::from(plan.term_class)] += 1;
                        }
                        self.counters.branches_taken += u64::from(t.taken);
                        self.sb.stats.chained_blocks += 1;
                        if t.halted {
                            self.halted = true;
                        }
                        if t.checkpoint {
                            stats.checkpoint = true;
                        }
                        self.pc = t.next;
                        if t.halted || t.checkpoint {
                            break;
                        }
                    }
                    if stats.checkpoint {
                        break;
                    }
                    continue;
                }
            }

            let plan = &self.image.blocks.plans[plan_idx as usize];
            let ops = &self.image.blocks.ops
                [plan.op_start as usize..(plan.op_start + plan.op_len) as usize];
            // Streak loop: hot loops whose terminator jumps back to this
            // same leader re-execute the block without leaving this arm.
            // Integer accounting is associative, so it is applied once
            // per streak (multiplied by the repeat count); energy stays
            // one add per op, in order.
            let mut budget_left = max_insts - stats.executed;
            let mut repeats = 0u64;
            let mut term_cycles = 0u64;
            let mut taken_count = 0u64;
            let mut fault: Option<(usize, u16)> = None;
            let mut stopped = false;
            'streak: loop {
                if let Some(f) = exec_body(
                    ops,
                    &mut lr,
                    &mut self.dmem,
                    &self.inputs,
                    &mut self.out_log,
                    &mut c_energy,
                    &mut s_energy,
                ) {
                    fault = Some(f);
                    break 'streak;
                }

                let t = exec_term(
                    &plan.term,
                    &mut lr,
                    plan.start + plan.op_len,
                    &mut c_energy,
                    &mut s_energy,
                );
                term_cycles += u64::from(t.cycles);
                taken_count += u64::from(t.taken);
                if t.halted {
                    self.halted = true;
                }
                if t.checkpoint {
                    stats.checkpoint = true;
                }
                repeats += 1;
                budget_left -= plan.insts;
                // halt/ckpt ends not just the streak but the call.
                let stop = t.halted || t.checkpoint;
                if stop || t.next != plan.start || plan.insts > budget_left {
                    self.pc = t.next;
                    stopped = stop;
                    break 'streak;
                }
            }

            // Fused integer accounting for the full repeats of the streak.
            let retired = plan.insts * repeats;
            self.counters.instructions += retired;
            self.counters.cycles += plan.body_cycles * repeats + term_cycles;
            stats.executed += retired;
            stats.cycles += plan.body_cycles * repeats + term_cycles;
            if repeats > 0 {
                for (count, add) in
                    self.counters.class_counts.iter_mut().zip(&plan.body_class_counts)
                {
                    *count += add * repeats;
                }
                if !matches!(plan.term, Term::FallThrough { .. }) {
                    self.counters.class_counts[usize::from(plan.term_class)] += repeats;
                }
                self.counters.branches_taken += taken_count;
            }

            if let Some((done, addr)) = fault {
                // Partial block: account the retired prefix exactly as
                // step mode would, then report the fault at its pc.
                self.counters.instructions += done as u64;
                for op in &ops[..done] {
                    self.counters.cycles += u64::from(op.cycles);
                    self.counters.class_counts[usize::from(op.class_idx)] += 1;
                }
                self.counters.energy_j = c_energy;
                self.regs.copy_from_slice(&lr[..16]);
                let pc = plan.start + done as u32;
                self.pc = pc;
                return Err(SimError::MemOutOfRange { addr, pc });
            }

            if SB && !self.sb.built {
                // Streak-granularity profiling: `repeats` executions of
                // this block, `repeats - 1` self-edges, one exit edge.
                let succ = if stopped {
                    NO_PLAN
                } else {
                    self.image.blocks.leader.get(self.pc as usize).copied().unwrap_or(NO_PLAN)
                };
                self.sb.record(plan_idx, repeats, succ, &self.image.blocks);
            }

            if stats.checkpoint {
                break;
            }
        }

        self.regs.copy_from_slice(&lr[..16]);
        self.counters.energy_j = c_energy;
        stats.energy_j = s_energy;
        stats.halted = self.halted;
        Ok(stats)
    }

    /// Number of basic blocks in the loaded image's block plan.
    #[must_use]
    pub fn block_count(&self) -> usize {
        self.image.blocks.plans.len()
    }

    /// Worst-case cycles any single instruction in the loaded image can
    /// take (taken-branch outcome included).
    #[must_use]
    pub fn max_step_cycles(&self) -> u32 {
        self.image.max_step_cycles
    }

    /// Worst-case energy any single instruction in the loaded image can
    /// draw, joules.
    #[must_use]
    pub fn max_step_energy_j(&self) -> f64 {
        self.image.max_step_energy_j
    }

    #[inline]
    fn rd(&self, r: Reg) -> u16 {
        if r.is_zero() {
            0
        } else {
            self.regs[r.index()]
        }
    }

    #[inline]
    fn wr(&mut self, r: Reg, value: u16) {
        if !r.is_zero() {
            self.regs[r.index()] = value;
        }
    }

    /// Current program counter.
    #[must_use]
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// `true` once `halt` has executed.
    #[must_use]
    pub fn halted(&self) -> bool {
        self.halted
    }

    /// Reads a register (r0 reads as zero).
    #[must_use]
    pub fn reg(&self, r: Reg) -> u16 {
        self.rd(r)
    }

    /// Writes a register (writes to r0 are discarded).
    pub fn set_reg(&mut self, r: Reg, value: u16) {
        self.wr(r, value);
    }

    /// Reads a data-memory word, if within installed memory.
    #[must_use]
    pub fn read_word(&self, addr: u16) -> Option<u16> {
        self.dmem.get(usize::from(addr)).copied()
    }

    /// Writes a data-memory word. Returns `false` if out of range.
    pub fn write_word(&mut self, addr: u16, value: u16) -> bool {
        match self.dmem.get_mut(usize::from(addr)) {
            Some(slot) => {
                *slot = value;
                true
            }
            None => false,
        }
    }

    /// Full data memory contents.
    #[must_use]
    pub fn dmem(&self) -> &[u16] {
        &self.dmem
    }

    /// Mutable data memory (for platform models and test harnesses).
    pub fn dmem_mut(&mut self) -> &mut [u16] {
        &mut self.dmem
    }

    /// Latches an input-port value for subsequent `in` instructions.
    pub fn set_input(&mut self, port: u8, value: u16) {
        self.inputs[usize::from(port & 0xF)] = value;
    }

    /// All `(port, value)` pairs emitted by `out`, in program order.
    #[must_use]
    pub fn out_log(&self) -> &[(u8, u16)] {
        &self.out_log
    }

    /// Clears the output log (e.g. between frames).
    pub fn clear_out_log(&mut self) {
        self.out_log.clear();
    }

    /// The performance/energy counters.
    #[must_use]
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// Resets the performance/energy counters to zero.
    pub fn reset_counters(&mut self) {
        self.counters = Counters::default();
    }

    /// Captures the volatile architectural state (registers + PC).
    #[must_use]
    pub fn snapshot(&self) -> ArchState {
        ArchState { regs: self.regs, pc: self.pc }
    }

    /// Restores a previously captured architectural state and clears the
    /// halted flag (a restore resumes execution).
    pub fn restore(&mut self, state: &ArchState) {
        self.regs = state.regs;
        self.pc = state.pc;
        self.halted = false;
    }

    /// Models a power loss on a platform *without* state retention: the
    /// register file is cleared and the PC returns to the entry point.
    /// Data memory is left untouched — callers model its volatility.
    pub fn reset_volatile(&mut self) {
        self.regs = [0; 16];
        self.pc = self.image.entry;
        self.halted = false;
    }

    /// Clears all of data memory (volatile-SRAM power loss).
    pub fn clear_dmem(&mut self) {
        self.dmem.fill(0);
    }

    /// Number of instructions in the loaded image.
    #[must_use]
    pub fn code_len(&self) -> usize {
        self.image.code.len()
    }
}

/// Outcome of executing a block terminator against the local register
/// file: the successor pc plus the data-dependent accounting bits the
/// caller folds into its own counters.
pub(crate) struct TermOutcome {
    pub(crate) next: u32,
    pub(crate) cycles: u32,
    pub(crate) taken: bool,
    pub(crate) halted: bool,
    pub(crate) checkpoint: bool,
}

/// Executes a block body's micro-ops against a local register file,
/// adding each op's energy to both accumulators in program order.
/// Returns `Some((op_index, addr))` at the first out-of-range access,
/// with ops `0..op_index` fully applied and the faulting op unretired
/// and uncharged — exactly the state `step()` leaves behind.
#[inline(always)]
#[allow(clippy::too_many_arguments)]
pub(crate) fn exec_body(
    ops: &[MicroOp],
    lr: &mut [u16; NUM_SLOTS],
    dmem: &mut [u16],
    inputs: &[u16; 16],
    out_log: &mut Vec<(u8, u16)>,
    c_energy: &mut f64,
    s_energy: &mut f64,
) -> Option<(usize, u16)> {
    for (i, op) in ops.iter().enumerate() {
        match op.kind {
            MicroKind::Add { d, a, b } => {
                lr[usize::from(d)] = lr[usize::from(a)].wrapping_add(lr[usize::from(b)]);
            }
            MicroKind::Sub { d, a, b } => {
                lr[usize::from(d)] = lr[usize::from(a)].wrapping_sub(lr[usize::from(b)]);
            }
            MicroKind::And { d, a, b } => {
                lr[usize::from(d)] = lr[usize::from(a)] & lr[usize::from(b)];
            }
            MicroKind::Or { d, a, b } => {
                lr[usize::from(d)] = lr[usize::from(a)] | lr[usize::from(b)];
            }
            MicroKind::Xor { d, a, b } => {
                lr[usize::from(d)] = lr[usize::from(a)] ^ lr[usize::from(b)];
            }
            MicroKind::Sll { d, a, b } => {
                lr[usize::from(d)] = lr[usize::from(a)] << (lr[usize::from(b)] & 0xF);
            }
            MicroKind::Srl { d, a, b } => {
                lr[usize::from(d)] = lr[usize::from(a)] >> (lr[usize::from(b)] & 0xF);
            }
            MicroKind::Sra { d, a, b } => {
                lr[usize::from(d)] =
                    ((lr[usize::from(a)] as i16) >> (lr[usize::from(b)] & 0xF)) as u16;
            }
            MicroKind::Mul { d, a, b } => {
                let p = i32::from(lr[usize::from(a)] as i16) * i32::from(lr[usize::from(b)] as i16);
                lr[usize::from(d)] = p as u16;
            }
            MicroKind::Mulh { d, a, b } => {
                let p = i32::from(lr[usize::from(a)] as i16) * i32::from(lr[usize::from(b)] as i16);
                lr[usize::from(d)] = (p >> 16) as u16;
            }
            MicroKind::Slt { d, a, b } => {
                lr[usize::from(d)] =
                    u16::from((lr[usize::from(a)] as i16) < (lr[usize::from(b)] as i16));
            }
            MicroKind::Sltu { d, a, b } => {
                lr[usize::from(d)] = u16::from(lr[usize::from(a)] < lr[usize::from(b)]);
            }
            MicroKind::Divu { d, a, b } => {
                lr[usize::from(d)] =
                    lr[usize::from(a)].checked_div(lr[usize::from(b)]).unwrap_or(0xFFFF);
            }
            MicroKind::Remu { d, a, b } => {
                let div = lr[usize::from(b)];
                lr[usize::from(d)] =
                    if div == 0 { lr[usize::from(a)] } else { lr[usize::from(a)] % div };
            }
            MicroKind::Addi { d, a, imm } => {
                lr[usize::from(d)] = lr[usize::from(a)].wrapping_add(imm);
            }
            MicroKind::Andi { d, a, imm } => {
                lr[usize::from(d)] = lr[usize::from(a)] & imm;
            }
            MicroKind::Ori { d, a, imm } => {
                lr[usize::from(d)] = lr[usize::from(a)] | imm;
            }
            MicroKind::Xori { d, a, imm } => {
                lr[usize::from(d)] = lr[usize::from(a)] ^ imm;
            }
            MicroKind::Slli { d, a, shamt } => {
                lr[usize::from(d)] = lr[usize::from(a)] << shamt;
            }
            MicroKind::Srli { d, a, shamt } => {
                lr[usize::from(d)] = lr[usize::from(a)] >> shamt;
            }
            MicroKind::Srai { d, a, shamt } => {
                lr[usize::from(d)] = ((lr[usize::from(a)] as i16) >> shamt) as u16;
            }
            MicroKind::Slti { d, a, imm } => {
                lr[usize::from(d)] = u16::from((lr[usize::from(a)] as i16) < imm);
            }
            MicroKind::Li { d, imm } => lr[usize::from(d)] = imm,
            MicroKind::Lw { d, a, offset } => {
                let addr = lr[usize::from(a)].wrapping_add(offset);
                match dmem.get(usize::from(addr)) {
                    Some(&v) => lr[usize::from(d)] = v,
                    None => return Some((i, addr)),
                }
            }
            MicroKind::Sw { s, a, offset } => {
                let addr = lr[usize::from(a)].wrapping_add(offset);
                match dmem.get_mut(usize::from(addr)) {
                    Some(slot) => *slot = lr[usize::from(s)],
                    None => return Some((i, addr)),
                }
            }
            MicroKind::Nop => {}
            MicroKind::Out { port, s } => {
                out_log.push((port, lr[usize::from(s)]));
            }
            MicroKind::In { d, port } => {
                lr[usize::from(d)] = inputs[usize::from(port)];
            }
        }
        *c_energy += op.energy_j;
        *s_energy += op.energy_j;
    }
    None
}

/// Executes a block terminator against the local register file. Energy
/// is charged to both accumulators; integer accounting is returned for
/// the caller to fold in. `halt_pc` is the terminator's own address —
/// as in step mode, `halt` leaves the pc on itself.
#[inline(always)]
pub(crate) fn exec_term(
    term: &Term,
    lr: &mut [u16; NUM_SLOTS],
    halt_pc: u32,
    c_energy: &mut f64,
    s_energy: &mut f64,
) -> TermOutcome {
    let mut out =
        TermOutcome { next: 0, cycles: 0, taken: false, halted: false, checkpoint: false };
    match *term {
        Term::FallThrough { next } => out.next = next,
        Term::Branch {
            cond,
            a,
            b,
            taken_pc,
            fall_pc,
            cycles_nt,
            cycles_t,
            energy_nt_j,
            energy_t_j,
        } => {
            let x = lr[usize::from(a)];
            let y = lr[usize::from(b)];
            let taken = match cond {
                Cond::Eq => x == y,
                Cond::Ne => x != y,
                Cond::Lt => (x as i16) < (y as i16),
                Cond::Ge => (x as i16) >= (y as i16),
                Cond::Ltu => x < y,
                Cond::Geu => x >= y,
            };
            let (cycles, energy) =
                if taken { (cycles_t, energy_t_j) } else { (cycles_nt, energy_nt_j) };
            out.cycles = cycles;
            out.taken = taken;
            *c_energy += energy;
            *s_energy += energy;
            out.next = if taken { taken_pc } else { fall_pc };
        }
        Term::Jal { link_slot, link_val, target, cycles, energy_j } => {
            lr[usize::from(link_slot)] = link_val;
            out.cycles = cycles;
            *c_energy += energy_j;
            *s_energy += energy_j;
            out.next = target;
        }
        Term::Jalr { link_slot, link_val, a, offset, cycles, energy_j } => {
            // Target reads rs1 before the link write (rd == rs1).
            let target = u32::from(lr[usize::from(a)].wrapping_add(offset));
            lr[usize::from(link_slot)] = link_val;
            out.cycles = cycles;
            *c_energy += energy_j;
            *s_energy += energy_j;
            out.next = target;
        }
        Term::Halt { cycles, energy_j } => {
            out.cycles = cycles;
            *c_energy += energy_j;
            *s_energy += energy_j;
            out.halted = true;
            out.next = halt_pc;
        }
        Term::Ckpt { next, cycles, energy_j } => {
            out.cycles = cycles;
            *c_energy += energy_j;
            *s_energy += energy_j;
            out.checkpoint = true;
            out.next = next;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_isa::asm::assemble;

    fn run_src(src: &str) -> Machine {
        let p = assemble(src).expect("assembles");
        let mut m = Machine::new(&p).expect("loads");
        m.run(1_000_000).expect("runs");
        assert!(m.halted(), "program halted");
        m
    }

    #[test]
    fn arithmetic_wraps() {
        let m = run_src("li r1, 0xFFFF\naddi r2, r1, 1\nli r3, 0x8000\nsub r4, r0, r3\nhalt");
        assert_eq!(m.reg(Reg::R2), 0);
        assert_eq!(m.reg(Reg::R4), 0x8000);
    }

    #[test]
    fn signed_ops() {
        let m = run_src(
            "li r1, 0xFFFE   ; -2
             li r2, 3
             mul r3, r1, r2   ; -6
             mulh r4, r1, r2  ; high half of -6 = 0xFFFF
             slt r5, r1, r2   ; -2 < 3
             sltu r6, r1, r2  ; 0xFFFE < 3 unsigned? no
             srai r7, r1, 1   ; -1
             halt",
        );
        assert_eq!(m.reg(Reg::R3) as i16, -6);
        assert_eq!(m.reg(Reg::R4), 0xFFFF);
        assert_eq!(m.reg(Reg::R5), 1);
        assert_eq!(m.reg(Reg::R6), 0);
        assert_eq!(m.reg(Reg::R7) as i16, -1);
    }

    #[test]
    fn division_semantics() {
        let m = run_src(
            "li r1, 17\nli r2, 5\ndivu r3, r1, r2\nremu r4, r1, r2\n\
             divu r5, r1, r0\nremu r6, r1, r0\nhalt",
        );
        assert_eq!(m.reg(Reg::R3), 3);
        assert_eq!(m.reg(Reg::R4), 2);
        assert_eq!(m.reg(Reg::R5), 0xFFFF, "divide by zero yields all-ones");
        assert_eq!(m.reg(Reg::R6), 17, "remainder by zero yields dividend");
    }

    #[test]
    fn r0_is_hardwired_zero() {
        let m = run_src("li r0, 99\nadd r1, r0, r0\nhalt");
        assert_eq!(m.reg(Reg::R0), 0);
        assert_eq!(m.reg(Reg::R1), 0);
    }

    #[test]
    fn loop_sums_memory() {
        let m = run_src(
            "
            li r1, buf
            li r2, 4        ; count
            li r3, 0        ; acc
        loop:
            lw r4, 0(r1)
            add r3, r3, r4
            addi r1, r1, 1
            addi r2, r2, -1
            bnez r2, loop
            sw r3, 0(r0)    ; result at address 0
            halt
        .data 0x100
        buf: .word 10, 20, 30, 40
        ",
        );
        assert_eq!(m.read_word(0), Some(100));
    }

    #[test]
    fn call_and_return() {
        let m = run_src(
            "
            li r1, 5
            call double
            mov r3, r1
            halt
        double:
            add r1, r1, r1
            ret
        ",
        );
        assert_eq!(m.reg(Reg::R3), 10);
    }

    #[test]
    fn io_ports() {
        let p = assemble("in r1, 2\naddi r1, r1, 1\nout 7, r1\nhalt").unwrap();
        let mut m = Machine::new(&p).unwrap();
        m.set_input(2, 41);
        m.run(10).unwrap();
        assert_eq!(m.out_log(), &[(7, 42)]);
    }

    #[test]
    fn ckpt_reports_checkpoint() {
        let p = assemble("ckpt\nhalt").unwrap();
        let mut m = Machine::new(&p).unwrap();
        let s = m.step().unwrap();
        assert!(s.checkpoint);
        let s = m.step().unwrap();
        assert!(s.halted && !s.checkpoint);
    }

    #[test]
    fn halted_machine_steps_free() {
        let p = assemble("halt").unwrap();
        let mut m = Machine::new(&p).unwrap();
        m.step().unwrap();
        let before = *m.counters();
        let s = m.step().unwrap();
        assert!(s.halted);
        assert_eq!(s.cycles, 0);
        assert_eq!(m.counters().instructions, before.instructions);
    }

    #[test]
    fn pc_out_of_range_faults() {
        let p = assemble("nop").unwrap();
        let mut m = Machine::new(&p).unwrap();
        m.step().unwrap();
        assert_eq!(m.step(), Err(SimError::PcOutOfRange { pc: 1 }));
    }

    #[test]
    fn mem_out_of_range_faults() {
        let p = assemble("li r1, 0x7FFF\nlw r2, 1(r1)\nhalt").unwrap();
        let mut m = Machine::new(&p).unwrap(); // default 8192 words
        let err = m.run(10).unwrap_err();
        assert!(matches!(err, SimError::MemOutOfRange { .. }));
    }

    #[test]
    fn data_segment_too_big_rejected() {
        let p = assemble(".text\nhalt\n.data 0x1FFF\n.word 1, 2").unwrap();
        assert!(matches!(
            Machine::with_config(&p, 0x2000, CycleModel::default(), EnergyModel::default()),
            Err(SimError::MemOutOfRange { .. })
        ));
    }

    #[test]
    fn counters_accumulate() {
        let m = run_src("li r1, 2\nli r2, 3\nmul r3, r1, r2\nlw r4, 0(r0)\nsw r4, 1(r0)\nhalt");
        let c = m.counters();
        assert_eq!(c.instructions, 6);
        assert_eq!(c.count(InstClass::Alu), 2);
        assert_eq!(c.count(InstClass::Mul), 1);
        assert_eq!(c.count(InstClass::Load), 1);
        assert_eq!(c.count(InstClass::Store), 1);
        assert_eq!(c.count(InstClass::System), 1);
        assert!(c.cycles >= c.instructions);
        assert!(c.energy_j > 0.0);
    }

    #[test]
    fn snapshot_restore_round_trip() {
        let p = assemble("li r1, 1\nli r2, 2\nli r3, 3\nhalt").unwrap();
        let mut m = Machine::new(&p).unwrap();
        m.step().unwrap();
        m.step().unwrap();
        let snap = m.snapshot();
        m.run(10).unwrap();
        assert!(m.halted());
        m.restore(&snap);
        assert!(!m.halted());
        assert_eq!(m.pc(), snap.pc);
        assert_eq!(m.reg(Reg::R1), 1);
        assert_eq!(m.reg(Reg::R3), 0, "r3 not yet written at snapshot time");
        m.run(10).unwrap();
        assert_eq!(m.reg(Reg::R3), 3);
    }

    #[test]
    fn reset_volatile_returns_to_entry() {
        let p = assemble(".entry main\nnop\nmain: li r1, 7\nhalt").unwrap();
        let mut m = Machine::new(&p).unwrap();
        m.run(10).unwrap();
        assert_eq!(m.reg(Reg::R1), 7);
        m.reset_volatile();
        assert_eq!(m.pc(), 1);
        assert_eq!(m.reg(Reg::R1), 0);
        assert!(!m.halted());
    }

    #[test]
    fn taken_branch_costs_more() {
        let p = assemble("beq r0, r0, 1\nnop\nhalt").unwrap();
        let mut m = Machine::new(&p).unwrap();
        let taken = m.step().unwrap();
        let cm = CycleModel::default();
        assert_eq!(taken.cycles, cm.branch_taken);
        assert_eq!(m.pc(), 2);
        assert_eq!(m.counters().branches_taken, 1);
    }

    #[test]
    fn negative_branch_below_zero_faults() {
        let p = assemble("beq r0, r0, -5").unwrap();
        let mut m = Machine::new(&p).unwrap();
        m.step().unwrap();
        assert!(matches!(m.step(), Err(SimError::PcOutOfRange { .. })));
    }

    #[test]
    fn deterministic_energy() {
        let src = "li r1, 100\nx: addi r1, r1, -1\nbnez r1, x\nhalt";
        let a = run_src(src);
        let b = run_src(src);
        assert_eq!(a.counters().energy_j.to_bits(), b.counters().energy_j.to_bits());
        assert_eq!(a.counters().cycles, b.counters().cycles);
    }

    /// Asserts two machines are bit-identical in every observable way.
    fn assert_machines_match(a: &Machine, b: &Machine, what: &str) {
        assert_eq!(a.snapshot(), b.snapshot(), "{what}");
        assert_eq!(a.halted(), b.halted(), "{what}");
        assert_eq!(a.dmem(), b.dmem(), "{what}");
        assert_eq!(a.out_log(), b.out_log(), "{what}");
        let ca = a.counters();
        let cb = b.counters();
        assert_eq!(ca.instructions, cb.instructions, "{what}");
        assert_eq!(ca.cycles, cb.cycles, "{what}");
        assert_eq!(ca.energy_j.to_bits(), cb.energy_j.to_bits(), "counter energy, {what}");
        assert_eq!(ca.class_counts, cb.class_counts, "{what}");
        assert_eq!(ca.branches_taken, cb.branches_taken, "{what}");
    }

    /// Asserts that `run_blocks(budget)`, `run_superblocks(budget)`, and
    /// a `run_block(budget)` step loop over the same program leave
    /// bit-identical machines and return bit-identical stats.
    fn assert_block_equivalence(src: &str, budgets: &[u64]) {
        let p = assemble(src).expect("assembles");
        for &budget in budgets {
            let mut by_step = Machine::new(&p).expect("loads");
            let mut by_block = Machine::new(&p).expect("loads");
            let mut by_super = Machine::new(&p).expect("loads");
            let a = by_step.run_block(budget);
            let b = by_block.run_blocks(budget);
            let c = by_super.run_superblocks(budget);
            for (name, r) in [("block", &b), ("superblock", &c)] {
                match (&a, r) {
                    (Ok(sa), Ok(sb)) => {
                        assert_eq!(sa.executed, sb.executed, "{name}, budget {budget}");
                        assert_eq!(sa.cycles, sb.cycles, "{name}, budget {budget}");
                        assert_eq!(
                            sa.energy_j.to_bits(),
                            sb.energy_j.to_bits(),
                            "stats energy, {name}, budget {budget}"
                        );
                        assert_eq!(sa.halted, sb.halted, "{name}, budget {budget}");
                        assert_eq!(sa.checkpoint, sb.checkpoint, "{name}, budget {budget}");
                    }
                    (Err(ea), Err(eb)) => assert_eq!(ea, eb, "{name}, budget {budget}"),
                    (a, b) => panic!("budget {budget}: step {a:?} vs {name} {b:?}"),
                }
            }
            assert_machines_match(&by_step, &by_block, &format!("block, budget {budget}"));
            assert_machines_match(&by_step, &by_super, &format!("superblock, budget {budget}"));
        }
    }

    #[test]
    fn blocks_match_steps_on_loop() {
        assert_block_equivalence(
            "li r1, 50\nli r2, 0\nx: add r2, r2, r1\naddi r1, r1, -1\nbnez r1, x\nsw r2, 0(r0)\nhalt",
            &[0, 1, 2, 3, 5, 7, 100, 1_000_000],
        );
    }

    #[test]
    fn blocks_match_steps_on_io_and_ckpt() {
        assert_block_equivalence(
            "in r1, 2\nckpt\naddi r1, r1, 1\nout 7, r1\nckpt\nhalt",
            &[0, 1, 2, 3, 4, 5, 6, 100],
        );
    }

    #[test]
    fn blocks_match_steps_on_call_return() {
        assert_block_equivalence(
            "li r1, 5\ncall double\nmov r3, r1\nhalt\ndouble: add r1, r1, r1\nret",
            &[1, 2, 3, 4, 5, 6, 7, 100],
        );
    }

    #[test]
    fn blocks_match_steps_on_fault() {
        assert_block_equivalence("li r1, 0x7FFF\nli r2, 9\nlw r3, 1(r1)\nhalt", &[1, 2, 3, 100]);
        assert_block_equivalence("li r1, 0x7FFF\nsw r1, 1(r1)\nhalt", &[1, 2, 100]);
        // Wild control flow: pc leaves the image.
        assert_block_equivalence("beq r0, r0, -5", &[1, 2, 100]);
    }

    #[test]
    fn blocks_handle_mid_block_entry() {
        // Restore to a non-leader address: the engine must fall back to
        // stepping until it reaches a leader.
        let p = assemble("li r1, 1\nli r2, 2\nli r3, 3\nli r4, 4\nhalt").unwrap();
        let mut by_step = Machine::new(&p).unwrap();
        let mut by_block = Machine::new(&p).unwrap();
        let mid = ArchState { regs: [0; 16], pc: 2 };
        by_step.restore(&mid);
        by_block.restore(&mid);
        by_step.run_block(100).unwrap();
        by_block.run_blocks(100).unwrap();
        assert_eq!(by_step.snapshot(), by_block.snapshot());
        assert_eq!(by_step.counters().energy_j.to_bits(), by_block.counters().energy_j.to_bits());
        assert!(by_block.halted());
        assert_eq!(by_block.reg(Reg::R1), 0, "r1 skipped by mid-block entry");
        assert_eq!(by_block.reg(Reg::R3), 3);
    }

    #[test]
    fn jalr_link_register_alias() {
        // jalr with rd == rs1 must compute the target before the link
        // write, in both engines.
        let src = "li r1, 3\njalr r1, r1, 0\nhalt\nli r2, 9\nhalt";
        assert_block_equivalence(src, &[1, 2, 3, 100]);
        let p = assemble(src).unwrap();
        let mut m = Machine::new(&p).unwrap();
        m.run_blocks(100).unwrap();
        assert_eq!(m.reg(Reg::R2), 9, "jalr jumped to pre-link rs1 value");
        assert_eq!(m.reg(Reg::R1), 2, "link value written after target read");
    }

    #[test]
    fn block_table_covers_image() {
        let p = assemble("li r1, 4\nx: addi r1, r1, -1\nbnez r1, x\nhalt").unwrap();
        let m = Machine::new(&p).unwrap();
        // entry block [li], loop block [addi, bnez], halt block.
        assert_eq!(m.block_count(), 3);
    }

    /// A loop whose body spans three basic blocks, steered by input
    /// port 0: input 1 takes the `addi r3` arm, input 0 the `addi r4`
    /// arm. Six instructions per iteration either way.
    const CHAIN_SRC: &str = "
        li r1, 6000
    loop:
        in r2, 0
        beqz r2, skip
        addi r3, r3, 1
        beq r0, r0, join
    skip:
        addi r4, r4, 1
    join:
        addi r1, r1, -1
        bnez r1, loop
        halt
    ";

    #[test]
    fn superblocks_form_chains_and_side_exit_exactly() {
        let p = assemble(CHAIN_SRC).unwrap();
        let mut by_step = Machine::new(&p).unwrap();
        let mut by_super = Machine::new(&p).unwrap();
        by_step.set_input(0, 1);
        by_super.set_input(0, 1);
        by_step.run_block(6000).unwrap();
        by_super.run_superblocks(6000).unwrap();
        let stats = by_super.superblock_stats();
        assert!(stats.chains_formed >= 1, "hot trace fused after warm-up: {stats:?}");
        assert!(stats.chain_runs > 0, "{stats:?}");
        assert!(stats.chained_blocks > 0, "{stats:?}");
        assert_machines_match(&by_step, &by_super, "warm phase");
        // Steer off the recorded trace: every remaining iteration must
        // side-exit the chain and finish on the block tier, exactly.
        by_step.set_input(0, 0);
        by_super.set_input(0, 0);
        by_step.run_block(u64::MAX).unwrap();
        by_super.run_superblocks(u64::MAX).unwrap();
        assert!(by_super.superblock_stats().side_exits > 0, "off-trace input side-exits");
        assert!(by_super.halted());
        assert_machines_match(&by_step, &by_super, "after side exits");
    }

    #[test]
    fn adopted_profile_survives_machine_rebuild() {
        let p = assemble(CHAIN_SRC).unwrap();
        let mut warm = Machine::new(&p).unwrap();
        warm.set_input(0, 1);
        warm.run_superblocks(u64::MAX).unwrap();
        let warmed = warm.superblock_stats();
        assert!(warmed.chains_formed >= 1);
        // Power-failure rebuild: fresh state, same image, learned chains
        // carried over instead of re-warming.
        let image = Arc::clone(warm.image());
        let mut rebuilt = Machine::from_image(&image);
        rebuilt.adopt_profile_from(&mut warm);
        assert_eq!(rebuilt.superblock_stats(), warmed);
        rebuilt.set_input(0, 1);
        let mut by_step = Machine::new(&p).unwrap();
        by_step.set_input(0, 1);
        by_step.run_block(u64::MAX).unwrap();
        rebuilt.run_superblocks(u64::MAX).unwrap();
        assert!(
            rebuilt.superblock_stats().chain_runs > warmed.chain_runs,
            "chains reused immediately, not re-warmed"
        );
        assert_machines_match(&by_step, &rebuilt, "rebuilt machine");
    }
}
