//! The simulator-level foundation of the NVP guarantee: snapshotting the
//! architectural state, losing the volatile machine, and restoring must
//! be exactly equivalent to never having been interrupted — at *any*
//! interruption points. Deterministically seeded random sweeps replace
//! the original proptest strategies.

use nvp_isa::asm::assemble;
use nvp_isa::Program;
use nvp_sim::Machine;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A small checksum program with data-dependent control flow: mixes
/// loads, stores, multiplies, branches and I/O over a 64-word buffer.
fn checksum_program() -> Program {
    assemble(
        r"
        .equ N, 64
        .equ BUF, 0x40
            li   r1, BUF
            li   r2, N
            li   r3, 0          ; sum
            li   r4, 1          ; weighted product
        loop:
            lw   r5, 0(r1)
            add  r3, r3, r5
            andi r6, r5, 1
            beqz r6, even
            mul  r4, r4, r5
        even:
            sw   r3, N(r1)      ; running sums to BUF+N..
            addi r1, r1, 1
            addi r2, r2, -1
            bnez r2, loop
            out  0, r3
            out  1, r4
            halt
        ",
    )
    .expect("checksum program assembles")
}

fn fresh_machine(data: &[u16]) -> Machine {
    let mut program = checksum_program();
    program.add_data(0x40, data);
    Machine::new(&program).expect("loads")
}

fn final_state(machine: &Machine) -> (Vec<u16>, Vec<(u8, u16)>) {
    (machine.dmem().to_vec(), machine.out_log().to_vec())
}

fn any_data(rng: &mut StdRng) -> Vec<u16> {
    (0..64).map(|_| rng.random::<u16>()).collect()
}

/// For any input buffer and any set of interruption points, a run with
/// snapshot → volatile-loss → restore cycles produces exactly the same
/// memory and output log as an uninterrupted run.
#[test]
fn interrupted_equals_uninterrupted() {
    let mut rng = StdRng::seed_from_u64(0x51b_001);
    for _ in 0..120 {
        let data = any_data(&mut rng);
        let n_cuts = rng.random::<u32>() as usize % 6;
        let cut_points: Vec<u64> = (0..n_cuts).map(|_| 1 + rng.random::<u64>() % 499).collect();

        // Reference: run to completion without interruptions.
        let mut reference = fresh_machine(&data);
        reference.run(1_000_000).unwrap();
        assert!(reference.halted());
        let want = final_state(&reference);

        // Interrupted: execute in chunks, losing volatile state between.
        let mut machine = fresh_machine(&data);
        for &chunk in &cut_points {
            machine.run(chunk).unwrap();
            if machine.halted() {
                break;
            }
            let snapshot = machine.snapshot();
            // Power failure: registers and PC are garbage afterwards.
            machine.reset_volatile();
            machine.set_reg(nvp_isa::Reg::R7, 0xDEAD);
            // Hardware restore.
            machine.restore(&snapshot);
        }
        machine.run(1_000_000).unwrap();
        assert!(machine.halted());
        assert_eq!(final_state(&machine), want);
    }
}

/// Snapshot/restore is idempotent: restoring twice, or restoring the
/// snapshot of an untouched machine, changes nothing.
#[test]
fn restore_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(0x51b_002);
    for _ in 0..120 {
        let data = any_data(&mut rng);
        let steps = 1 + rng.random::<u64>() % 299;
        let mut machine = fresh_machine(&data);
        machine.run(steps).unwrap();
        let snap = machine.snapshot();
        let before = (machine.pc(), machine.reg(nvp_isa::Reg::R3));
        machine.restore(&snap);
        machine.restore(&snap);
        assert_eq!((machine.pc(), machine.reg(nvp_isa::Reg::R3)), before);
    }
}
