//! Seeded grammar-based NV16 program fuzzer.
//!
//! Generates random-but-structured assembly programs for differential
//! testing of the simulator's execution tiers (step / block /
//! superblock / lane). The grammar is chosen to exercise exactly the
//! control shapes those tiers specialize on:
//!
//! * straight-line ALU bursts (block fusion),
//! * bounded down-counter loops, including tight self-loops (streak
//!   batching) and multi-block bodies (superblock chaining),
//! * forward branch diamonds whose direction depends on fuzzed register
//!   data (side exits, lane divergence),
//! * `call`/`ret` subroutines (`jal`/`jalr` dispatch),
//! * loads and stores confined to a window the program also sizes
//!   (or, in [`FuzzClass::Wild`] mode, occasionally far outside it, to
//!   exercise the fault paths).
//!
//! Every generated program provably halts: loops are down-counters with
//! seeded trip counts, all other control flow is forward, and the
//! subroutines are non-recursive. Generation is a pure function of the
//! seed — the same seed always yields byte-identical source.

use nvp_isa::asm::assemble;
use nvp_isa::Program;
use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Word address of the fuzzed programs' read/write data window.
const DATA_BASE: u16 = 0x40;

/// Size of the data window, words. Offsets are drawn below this.
const DATA_WINDOW: u16 = 32;

/// How adventurous the generated memory traffic is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FuzzClass {
    /// All loads and stores stay inside the declared data window, so
    /// the program runs fault-free on any machine with at least
    /// [`FuzzedProgram::dmem_words`] words.
    Safe,
    /// Like [`Safe`](FuzzClass::Safe), but each memory segment has a
    /// small chance of addressing far beyond the window — the program
    /// may legitimately fault, and every execution tier must fault at
    /// the identical instruction with identical prior state.
    Wild,
}

/// A generated program together with its source and memory requirement.
#[derive(Debug, Clone)]
pub struct FuzzedProgram {
    /// The generated assembly source (kept for error reporting — a
    /// differential mismatch cites the offending program).
    pub source: String,
    /// The assembled program.
    pub program: Program,
    /// Data-memory words the program assumes
    /// ([`FuzzClass::Wild`] programs may still address beyond this).
    pub dmem_words: usize,
}

/// Deterministic segment count for a seed: 6–13 segments.
fn segment_count(rng: &mut StdRng) -> usize {
    6 + (rng.next_u32() as usize % 8)
}

/// A data register name, `r1`–`r7`.
fn data_reg(rng: &mut StdRng) -> String {
    format!("r{}", 1 + rng.next_u32() % 7)
}

/// A register-register ALU mnemonic.
fn alu_op(rng: &mut StdRng) -> &'static str {
    const OPS: [&str; 11] =
        ["add", "sub", "and", "or", "xor", "sll", "srl", "sra", "mul", "mulh", "sltu"];
    OPS[rng.next_u32() as usize % OPS.len()]
}

/// An immediate ALU mnemonic with a seeded immediate.
fn alu_imm(rng: &mut StdRng) -> String {
    const OPS: [&str; 7] = ["addi", "andi", "ori", "xori", "slti", "slli", "srli"];
    let op = OPS[rng.next_u32() as usize % OPS.len()];
    let (d, s) = (data_reg(rng), data_reg(rng));
    match op {
        "slli" | "srli" => format!("    {op} {d}, {s}, {}", rng.next_u32() % 16),
        "addi" | "slti" => format!("    {op} {d}, {s}, {}", (rng.next_u32() as i32 % 201) - 100),
        _ => format!("    {op} {d}, {s}, {:#06x}", rng.next_u32() % 0x10000),
    }
}

/// Emits 1–5 random ALU instructions.
fn emit_alu_burst(out: &mut String, rng: &mut StdRng) {
    for _ in 0..(1 + rng.next_u32() % 5) {
        if rng.next_u32().is_multiple_of(3) {
            out.push_str(&alu_imm(rng));
            out.push('\n');
        } else {
            let (op, d, a, b) = (alu_op(rng), data_reg(rng), data_reg(rng), data_reg(rng));
            out.push_str(&format!("    {op} {d}, {a}, {b}\n"));
        }
    }
}

/// Emits a `divu`/`remu` pair — the divide-by-zero semantics
/// (`divu x/0 = 0xFFFF`, `remu x%0 = x`) are favorite tier bugs.
fn emit_div(out: &mut String, rng: &mut StdRng) {
    let (d, a, b) = (data_reg(rng), data_reg(rng), data_reg(rng));
    let op = if rng.next_u32().is_multiple_of(2) { "divu" } else { "remu" };
    out.push_str(&format!("    {op} {d}, {a}, {b}\n"));
}

/// Emits a bounded down-counter loop. Tight single-block bodies hit
/// streak batching; bodies with an inner branch span blocks and feed
/// superblock chains.
fn emit_loop(out: &mut String, rng: &mut StdRng, label: &str) {
    let trips = 2 + rng.next_u32() % 24;
    let counter = format!("r{}", 8 + rng.next_u32() % 3);
    out.push_str(&format!("    li {counter}, {trips}\n{label}:\n"));
    emit_alu_burst(out, rng);
    if rng.next_u32().is_multiple_of(3) {
        // A data-dependent skip inside the body splits it into two
        // blocks, so the loop exercises chain formation, not batching.
        let (a, skip) = (data_reg(rng), format!("{label}_skip"));
        out.push_str(&format!("    bnez {a}, {skip}\n"));
        emit_alu_burst(out, rng);
        out.push_str(&format!("{skip}:\n"));
    }
    out.push_str(&format!("    addi {counter}, {counter}, -1\n    bnez {counter}, {label}\n"));
}

/// Emits a load/store pair. `r11` always holds [`DATA_BASE`]; wild
/// programs occasionally aim a load far beyond the window instead.
fn emit_mem(out: &mut String, rng: &mut StdRng, class: FuzzClass) {
    if class == FuzzClass::Wild && rng.next_u32().is_multiple_of(8) {
        let (d, far) = (data_reg(rng), 0x4000 + (rng.next_u32() % 0x1000) as u16);
        out.push_str(&format!("    li r12, {far:#06x}\n    lw {d}, 0({})\n", "r12"));
        return;
    }
    let (s, d) = (data_reg(rng), data_reg(rng));
    let off = rng.next_u32() as u16 % DATA_WINDOW;
    out.push_str(&format!("    sw {s}, {off}(r11)\n    lw {d}, {off}(r11)\n"));
}

/// Emits a forward branch diamond with data-dependent direction.
fn emit_diamond(out: &mut String, rng: &mut StdRng, label: &str) {
    const BRANCHES: [&str; 6] = ["beq", "bne", "blt", "bge", "bltu", "bgeu"];
    let br = BRANCHES[rng.next_u32() as usize % BRANCHES.len()];
    let (a, b) = (data_reg(rng), data_reg(rng));
    let (alt, join) = (format!("{label}_alt"), format!("{label}_join"));
    out.push_str(&format!("    {br} {a}, {b}, {alt}\n"));
    emit_alu_burst(out, rng);
    out.push_str(&format!("    j {join}\n{alt}:\n"));
    emit_alu_burst(out, rng);
    out.push_str(&format!("{join}:\n"));
}

/// Generates one fuzzed program. Panics only if the generator itself
/// emits unassemblable source, which the in-crate tests pin against.
#[must_use]
pub fn generate(seed: u64, class: FuzzClass) -> FuzzedProgram {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = String::new();
    src.push_str(&format!("; fuzzed NV16 program, seed {seed:#x}\n.entry main\nmain:\n"));
    src.push_str(&format!("    li r11, {DATA_BASE:#06x}\n"));
    // Seed the data registers so branch directions and memory values
    // vary per program, then mix in one input port (lane tests drive
    // per-lane divergence through it).
    for r in 1..=7 {
        src.push_str(&format!("    li r{r}, {:#06x}\n", rng.next_u32() % 0x10000));
    }
    src.push_str("    in r7, 0\n");
    let segments = segment_count(&mut rng);
    let mut calls = Vec::new();
    for i in 0..segments {
        let label = format!("s{i}");
        match rng.next_u32() % 6 {
            0 => emit_alu_burst(&mut src, &mut rng),
            1 => emit_loop(&mut src, &mut rng, &label),
            2 => emit_mem(&mut src, &mut rng, class),
            3 => emit_diamond(&mut src, &mut rng, &label),
            4 => emit_div(&mut src, &mut rng),
            _ => {
                src.push_str(&format!("    call fn{i}\n"));
                calls.push(i);
            }
        }
    }
    // Publish a result and stop; subroutines live past the halt.
    let r = data_reg(&mut rng);
    src.push_str(&format!("    out 1, {r}\n    halt\n"));
    for i in calls {
        src.push_str(&format!("fn{i}:\n"));
        emit_alu_burst(&mut src, &mut rng);
        src.push_str("    ret\n");
    }
    let program = assemble(&src).unwrap_or_else(|e| panic!("fuzzer emitted bad asm: {e}\n{src}"));
    FuzzedProgram {
        source: src,
        program,
        dmem_words: usize::from(DATA_BASE) + usize::from(DATA_WINDOW),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nvp_sim::{CycleModel, EnergyModel, Machine};

    /// Generous per-program budget: trip counts are ≤ 25 per loop and
    /// segment counts ≤ 13, so honest programs finish in far fewer.
    const BUDGET: u64 = 200_000;

    #[test]
    fn generation_is_deterministic() {
        for seed in [0u64, 1, 0xDEAD_BEEF] {
            let a = generate(seed, FuzzClass::Safe);
            let b = generate(seed, FuzzClass::Safe);
            assert_eq!(a.source, b.source, "seed {seed:#x} not reproducible");
        }
    }

    #[test]
    fn safe_programs_assemble_run_and_halt() {
        for seed in 0..40u64 {
            let f = generate(seed, FuzzClass::Safe);
            let mut m = Machine::with_config(
                &f.program,
                f.dmem_words,
                CycleModel::default(),
                EnergyModel::default(),
            )
            .expect("machine loads");
            m.run(BUDGET).unwrap_or_else(|e| panic!("seed {seed:#x} faulted: {e}\n{}", f.source));
            assert!(m.halted(), "seed {seed:#x} did not halt in {BUDGET} steps\n{}", f.source);
        }
    }

    #[test]
    fn wild_programs_fault_or_halt_but_never_hang() {
        let mut faulted = 0;
        for seed in 0..60u64 {
            let f = generate(seed, FuzzClass::Wild);
            let mut m = Machine::with_config(
                &f.program,
                f.dmem_words,
                CycleModel::default(),
                EnergyModel::default(),
            )
            .expect("machine loads");
            match m.run(BUDGET) {
                Ok(_) => assert!(m.halted(), "seed {seed:#x} did not halt\n{}", f.source),
                Err(_) => faulted += 1,
            }
        }
        assert!(faulted > 0, "wild mode never faulted across 60 seeds");
    }

    #[test]
    fn seeds_produce_distinct_programs() {
        let a = generate(1, FuzzClass::Safe);
        let b = generate(2, FuzzClass::Safe);
        assert_ne!(a.source, b.source);
    }
}
