//! Synthetic grayscale sensor frames.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// An 8-bit grayscale frame, row-major.
///
/// Frames stand in for the buffered sensor captures the NVP literature's
/// image-processing platforms (battery-free cameras and similar) produce.
/// [`GrayImage::synthetic`] generates deterministic frames with enough
/// structure (gradients, blobs, edges, noise) to exercise filter kernels
/// meaningfully.
///
/// # Example
///
/// ```
/// use nvp_workloads::GrayImage;
///
/// let a = GrayImage::synthetic(1, 32, 32);
/// let b = GrayImage::synthetic(1, 32, 32);
/// assert_eq!(a, b, "same seed, same frame");
/// assert_eq!(a.pixels().len(), 1024);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct GrayImage {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl GrayImage {
    /// Creates a frame from raw pixels.
    ///
    /// # Panics
    ///
    /// Panics if `pixels.len() != width * height` or either dimension is 0.
    #[must_use]
    pub fn from_pixels(width: usize, height: usize, pixels: Vec<u8>) -> Self {
        assert!(width > 0 && height > 0, "dimensions must be positive");
        assert_eq!(pixels.len(), width * height, "pixel count mismatch");
        GrayImage { width, height, pixels }
    }

    /// Generates a deterministic synthetic frame: a diagonal illumination
    /// gradient, a few bright elliptical blobs, a dark bar, and mild
    /// sensor noise.
    #[must_use]
    pub fn synthetic(seed: u64, width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "dimensions must be positive");
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let mut pixels = vec![0u8; width * height];
        // Blob parameters.
        let n_blobs = 2 + (rng.random::<u32>() % 3) as usize;
        let blobs: Vec<(f64, f64, f64, f64)> = (0..n_blobs)
            .map(|_| {
                (
                    rng.random::<f64>() * width as f64,
                    rng.random::<f64>() * height as f64,
                    (2.0 + rng.random::<f64>() * (width as f64 / 4.0)).max(1.5),
                    80.0 + rng.random::<f64>() * 120.0,
                )
            })
            .collect();
        let bar_y = (rng.random::<u32>() as usize) % height;
        let bar_h = (height / 8).max(1);
        for y in 0..height {
            for x in 0..width {
                let mut v = 40.0 + 120.0 * (x + y) as f64 / (width + height) as f64;
                for &(bx, by, r, amp) in &blobs {
                    let d2 = (x as f64 - bx).powi(2) + (y as f64 - by).powi(2);
                    v += amp * (-d2 / (2.0 * r * r)).exp();
                }
                if y >= bar_y && y < bar_y + bar_h {
                    v *= 0.35;
                }
                v += (rng.random::<f64>() - 0.5) * 12.0;
                pixels[y * width + x] = v.clamp(0.0, 255.0) as u8;
            }
        }
        GrayImage { width, height, pixels }
    }

    /// Frame width in pixels.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw pixels, row-major.
    #[must_use]
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Pixel at `(x, y)`.
    ///
    /// # Panics
    ///
    /// Panics if out of bounds.
    #[must_use]
    pub fn at(&self, x: usize, y: usize) -> u8 {
        assert!(x < self.width && y < self.height, "pixel ({x},{y}) out of bounds");
        self.pixels[y * self.width + x]
    }

    /// The frame as data-memory words (one pixel per 16-bit word).
    #[must_use]
    pub fn to_words(&self) -> Vec<u16> {
        self.pixels.iter().map(|&p| u16::from(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_is_deterministic_and_varied() {
        let a = GrayImage::synthetic(3, 24, 24);
        let b = GrayImage::synthetic(3, 24, 24);
        let c = GrayImage::synthetic(4, 24, 24);
        assert_eq!(a, b);
        assert_ne!(a, c);
        // Real structure: spread of values, not constant.
        let min = a.pixels().iter().min().unwrap();
        let max = a.pixels().iter().max().unwrap();
        assert!(max - min > 60, "dynamic range {min}..{max}");
    }

    #[test]
    fn accessors() {
        let img = GrayImage::from_pixels(2, 3, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(img.width(), 2);
        assert_eq!(img.height(), 3);
        assert_eq!(img.at(1, 2), 6);
        assert_eq!(img.to_words(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "pixel count mismatch")]
    fn bad_pixel_count() {
        let _ = GrayImage::from_pixels(2, 2, vec![0; 3]);
    }
}
