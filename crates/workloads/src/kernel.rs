//! Kernel suite plumbing: build, run, verify.

use std::fmt;

use nvp_isa::asm::AsmError;
use nvp_isa::Program;
use nvp_sim::{CycleModel, EnergyModel, Machine, SimError};
use serde::{Deserialize, Serialize};

use crate::{kernels, GrayImage};

/// Errors from building or running a workload.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkloadError {
    /// The generated assembly failed to assemble (a kernel bug).
    Asm(AsmError),
    /// The program faulted or did not terminate in the simulator.
    Sim(SimError),
    /// The program ran but did not halt within the instruction budget.
    DidNotHalt {
        /// The instruction budget that was exhausted.
        budget: u64,
    },
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::Asm(e) => write!(f, "assembly failed: {e}"),
            WorkloadError::Sim(e) => write!(f, "simulation failed: {e}"),
            WorkloadError::DidNotHalt { budget } => {
                write!(f, "program did not halt within {budget} instructions")
            }
        }
    }
}

impl std::error::Error for WorkloadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            WorkloadError::Asm(e) => Some(e),
            WorkloadError::Sim(e) => Some(e),
            WorkloadError::DidNotHalt { .. } => None,
        }
    }
}

impl From<AsmError> for WorkloadError {
    fn from(e: AsmError) -> Self {
        WorkloadError::Asm(e)
    }
}

impl From<SimError> for WorkloadError {
    fn from(e: SimError) -> Self {
        WorkloadError::Sim(e)
    }
}

/// The post-sensing kernel suite.
///
/// Image kernels mirror the MiBench/susan-class benchmarks the NVP
/// literature evaluates; the scalar kernels cover the pattern-matching
/// and compression workloads it cites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum KernelKind {
    /// 3×3 Sobel gradient magnitude.
    Sobel,
    /// 3×3 median filter (salt-and-pepper denoise).
    Median,
    /// 3×3 box smoothing (susan.smoothing proxy).
    Smooth,
    /// Thresholded gradient edges (susan.edges proxy).
    Edges,
    /// Neighborhood-dissimilarity corners (susan.corners proxy).
    Corners,
    /// Integral image (summed-area table, wrapping 16-bit).
    Integral,
    /// 16-point fixed-point radix-2 FFT over the first image row.
    Fft16,
    /// 8×8 block DCT + shift quantization over the frame (jpeg.encode proxy).
    Dct8,
    /// CRC-16/CCITT over the frame bytes.
    Crc16,
    /// Count occurrences of a 4-word pattern (pattern matching).
    StrSearch,
    /// Run-length encoding of the frame (tiff/compression proxy).
    Rle,
    /// 8×8 fixed-point matrix multiply of two frame tiles.
    MatMul8,
    /// 16-bin intensity histogram.
    Histogram,
    /// 8-tap moving-average FIR over the frame as a 1-D stream.
    Fir8,
    /// 2×2 average-pooling downsampler (thumbnail proxy).
    Downsample,
}

impl KernelKind {
    /// All kernels in reporting order.
    pub const ALL: [KernelKind; 15] = [
        KernelKind::Sobel,
        KernelKind::Median,
        KernelKind::Smooth,
        KernelKind::Edges,
        KernelKind::Corners,
        KernelKind::Integral,
        KernelKind::Fft16,
        KernelKind::Dct8,
        KernelKind::Crc16,
        KernelKind::StrSearch,
        KernelKind::Rle,
        KernelKind::MatMul8,
        KernelKind::Histogram,
        KernelKind::Fir8,
        KernelKind::Downsample,
    ];

    /// Display name (matches the literature's naming where applicable).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            KernelKind::Sobel => "sobel",
            KernelKind::Median => "median",
            KernelKind::Smooth => "smooth",
            KernelKind::Edges => "edges",
            KernelKind::Corners => "corners",
            KernelKind::Integral => "integral",
            KernelKind::Fft16 => "fft16",
            KernelKind::Dct8 => "dct8",
            KernelKind::Crc16 => "crc16",
            KernelKind::StrSearch => "strsearch",
            KernelKind::Rle => "rle",
            KernelKind::MatMul8 => "matmul8",
            KernelKind::Histogram => "histogram",
            KernelKind::Fir8 => "fir8",
            KernelKind::Downsample => "downsample",
        }
    }

    /// `true` if the output is a full image frame (PSNR-comparable).
    #[must_use]
    pub fn image_output(self) -> bool {
        matches!(
            self,
            KernelKind::Sobel
                | KernelKind::Median
                | KernelKind::Smooth
                | KernelKind::Edges
                | KernelKind::Corners
                | KernelKind::Integral
        )
    }

    /// Builds an executable instance of this kernel over a frame.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Asm`] only if kernel codegen is broken
    /// (covered by tests for every kernel).
    pub fn build(self, image: &GrayImage) -> Result<KernelInstance, WorkloadError> {
        match self {
            KernelKind::Sobel => kernels::sobel::build(image),
            KernelKind::Median => kernels::median::build(image),
            KernelKind::Smooth => kernels::smooth::build(image),
            KernelKind::Edges => kernels::edges::build(image),
            KernelKind::Corners => kernels::corners::build(image),
            KernelKind::Integral => kernels::integral::build(image),
            KernelKind::Fft16 => kernels::fft16::build(image),
            KernelKind::Dct8 => kernels::dct8::build(image),
            KernelKind::Crc16 => kernels::crc16::build(image),
            KernelKind::StrSearch => kernels::strsearch::build(image),
            KernelKind::Rle => kernels::rle::build(image),
            KernelKind::MatMul8 => kernels::matmul8::build(image),
            KernelKind::Histogram => kernels::histogram::build(image),
            KernelKind::Fir8 => kernels::fir8::build(image),
            KernelKind::Downsample => kernels::downsample::build(image),
        }
    }
}

impl fmt::Display for KernelKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An executable kernel: program image + expected reference output.
#[derive(Debug, Clone)]
pub struct KernelInstance {
    kind: KernelKind,
    program: Program,
    out_addr: u16,
    out_len: usize,
    reference: Vec<u16>,
    min_dmem_words: usize,
    width: usize,
    height: usize,
}

impl KernelInstance {
    pub(crate) fn new(
        kind: KernelKind,
        program: Program,
        out_addr: u16,
        reference: Vec<u16>,
        min_dmem_words: usize,
        width: usize,
        height: usize,
    ) -> Self {
        KernelInstance {
            kind,
            program,
            out_addr,
            out_len: reference.len(),
            reference,
            min_dmem_words,
            width,
            height,
        }
    }

    /// Which kernel this is.
    #[must_use]
    pub fn kind(&self) -> KernelKind {
        self.kind
    }

    /// The executable program image.
    #[must_use]
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Word address of the output region.
    #[must_use]
    pub fn out_addr(&self) -> u16 {
        self.out_addr
    }

    /// Output length in words.
    #[must_use]
    pub fn out_len(&self) -> usize {
        self.out_len
    }

    /// The full-precision reference output.
    #[must_use]
    pub fn reference(&self) -> &[u16] {
        &self.reference
    }

    /// Minimum installed data memory, in words.
    #[must_use]
    pub fn min_dmem_words(&self) -> usize {
        self.min_dmem_words
    }

    /// Frame width this instance was built for.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height this instance was built for.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Extracts the output region from a machine.
    #[must_use]
    pub fn output_of(&self, machine: &Machine) -> Vec<u16> {
        let start = usize::from(self.out_addr);
        machine.dmem()[start..start + self.out_len].to_vec()
    }

    /// Creates a machine loaded with this kernel.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError::Sim`] if the image fails to load.
    pub fn machine(&self) -> Result<Machine, WorkloadError> {
        Ok(Machine::with_config(
            &self.program,
            self.min_dmem_words,
            CycleModel::default(),
            EnergyModel::default(),
        )?)
    }

    /// Runs the kernel to completion on uninterrupted power and returns
    /// the output region.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if the program faults or exceeds the
    /// 200 M-instruction budget.
    pub fn run_to_completion(&self) -> Result<Vec<u16>, WorkloadError> {
        const BUDGET: u64 = 200_000_000;
        let mut machine = self.machine()?;
        machine.run(BUDGET)?;
        if !machine.halted() {
            return Err(WorkloadError::DidNotHalt { budget: BUDGET });
        }
        Ok(self.output_of(&machine))
    }

    /// PSNR of an output against the reference (image kernels).
    #[must_use]
    pub fn psnr_of(&self, output: &[u16]) -> f64 {
        crate::metrics::psnr(&self.reference, output, 255.0)
    }

    /// MSE of an output against the reference.
    #[must_use]
    pub fn mse_of(&self, output: &[u16]) -> f64 {
        crate::metrics::mse(&self.reference, output)
    }
}
