//! Neighborhood-dissimilarity corner detector (susan.corners proxy): a
//! pixel is a corner candidate when at least 5 of its 8 neighbors differ
//! from it by more than a brightness threshold.

use nvp_isa::asm::assemble;

use super::{abs_trick, Layout};
use crate::{GrayImage, KernelInstance, KernelKind, WorkloadError};

/// Brightness-difference threshold.
pub(super) const DIFF_T: i16 = 30;
/// Dissimilar-neighbor count that marks a corner.
pub(super) const COUNT_T: u16 = 5;

fn reference(img: &GrayImage) -> Vec<u16> {
    let (w, h) = (img.width(), img.height());
    let mut out = vec![0u16; w * h];
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let c = i16::from(img.at(x, y));
            let mut count = 0u16;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    if dx == 0 && dy == 0 {
                        continue;
                    }
                    let n = i16::from(img.at((x as i32 + dx) as usize, (y as i32 + dy) as usize));
                    if abs_trick(n.wrapping_sub(c)) > DIFF_T {
                        count += 1;
                    }
                }
            }
            out[y * w + x] = if count >= COUNT_T { 255 } else { 0 };
        }
    }
    out
}

pub(crate) fn build(img: &GrayImage) -> Result<KernelInstance, WorkloadError> {
    let lay = Layout::for_image(img, img.width() * img.height(), 0);
    // One unrolled compare per neighbor, each with its own skip label.
    let neighbor = |idx: usize, offset: &str| {
        format!(
            "\
    lw   r7, {offset}(r3)
    sub  r7, r7, r5
    srai r8, r7, 15
    xor  r7, r7, r8
    sub  r7, r7, r8
    li   r8, {t}
    ble  r7, r8, skip{idx}
    addi r6, r6, 1
skip{idx}:",
            t = DIFF_T
        )
    };
    let offsets = ["0-W-1", "0-W", "0-W+1", "0-1", "1", "W-1", "W", "W+1"];
    let body: String =
        offsets.iter().enumerate().map(|(i, off)| neighbor(i, off)).collect::<Vec<_>>().join("\n");
    let src = format!(
        r"
.equ W, {w}
.equ H, {h}
.equ IN, {inp}
.equ OUT, {out}
    li   r1, 1              ; y
yloop:
    li   r4, W
    mul  r3, r1, r4
    addi r9, r3, OUT+1
    addi r3, r3, IN+1
    li   r2, 1              ; x
xloop:
    lw   r5, 0(r3)          ; centre
    li   r6, 0              ; dissimilar count
{body}
    li   r7, 0
    li   r8, {count_t}
    blt  r6, r8, weak
    li   r7, 255
weak:
    sw   r7, 0(r9)
    addi r3, r3, 1
    addi r9, r9, 1
    addi r2, r2, 1
    li   r8, W-1
    bne  r2, r8, xloop
    addi r1, r1, 1
    li   r8, H-1
    bne  r1, r8, yloop
    halt
",
        w = lay.w,
        h = lay.h,
        inp = lay.input,
        out = lay.out,
        count_t = COUNT_T,
    );
    let mut program = assemble(&src)?;
    program.add_data(lay.input, &img.to_words());
    Ok(KernelInstance::new(
        KernelKind::Corners,
        program,
        lay.out,
        reference(img),
        lay.min_dmem,
        lay.w,
        lay.h,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::check_kernel;
    use crate::KernelKind;

    #[test]
    fn matches_reference() {
        check_kernel(KernelKind::Corners, 12, 16, 16);
        check_kernel(KernelKind::Corners, 13, 16, 16);
    }

    #[test]
    fn isolated_spot_is_a_corner() {
        let mut pixels = vec![20u8; 64];
        pixels[3 * 8 + 3] = 250;
        let img = GrayImage::from_pixels(8, 8, pixels);
        let out = reference(&img);
        assert_eq!(out[3 * 8 + 3], 255, "an isolated bright pixel differs from all 8 neighbors");
    }

    #[test]
    fn flat_field_has_no_corners() {
        let img = GrayImage::from_pixels(8, 8, vec![77; 64]);
        assert!(reference(&img).iter().all(|&v| v == 0));
    }
}
