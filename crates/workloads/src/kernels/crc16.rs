//! CRC-16/CCITT (poly 0x1021, init 0xFFFF) over the frame's byte values —
//! the integrity-check kernel every sense-and-transmit stack runs.

use nvp_isa::asm::assemble;

use super::Layout;
use crate::{GrayImage, KernelInstance, KernelKind, WorkloadError};

/// Bitwise CRC-16/CCITT over the low byte of each word.
pub(super) fn crc16_ccitt(data: impl IntoIterator<Item = u8>) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for byte in data {
        crc ^= u16::from(byte) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 { (crc << 1) ^ 0x1021 } else { crc << 1 };
        }
    }
    crc
}

fn reference(img: &GrayImage) -> Vec<u16> {
    vec![crc16_ccitt(img.pixels().iter().copied())]
}

pub(crate) fn build(img: &GrayImage) -> Result<KernelInstance, WorkloadError> {
    let lay = Layout::for_image(img, 1, 0);
    let src = format!(
        r"
.equ N, {n}
.equ IN, {inp}
.equ OUT, {out}
    li   r1, IN             ; data pointer
    li   r2, N              ; words left
    li   r3, 0xFFFF         ; crc
word:
    lw   r4, 0(r1)
    andi r4, r4, 0xFF
    slli r4, r4, 8
    xor  r3, r3, r4
    li   r5, 8              ; bits left
bit:
    srli r6, r3, 15
    beqz r6, noxor
    slli r3, r3, 1
    xori r3, r3, 0x1021
    j    nextbit
noxor:
    slli r3, r3, 1
nextbit:
    addi r5, r5, -1
    bnez r5, bit
    addi r1, r1, 1
    addi r2, r2, -1
    bnez r2, word
    li   r1, OUT
    sw   r3, 0(r1)
    halt
",
        n = lay.n,
        inp = lay.input,
        out = lay.out,
    );
    let mut program = assemble(&src)?;
    program.add_data(lay.input, &img.to_words());
    Ok(KernelInstance::new(
        KernelKind::Crc16,
        program,
        lay.out,
        reference(img),
        lay.min_dmem,
        lay.w,
        lay.h,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::check_kernel;
    use crate::KernelKind;

    #[test]
    fn matches_reference() {
        check_kernel(KernelKind::Crc16, 20, 16, 16);
        check_kernel(KernelKind::Crc16, 21, 8, 8);
    }

    #[test]
    fn known_test_vector() {
        // CRC-16/CCITT-FALSE of "123456789" is 0x29B1.
        assert_eq!(crc16_ccitt(*b"123456789"), 0x29B1);
    }

    #[test]
    fn sensitive_to_any_bit() {
        let a = GrayImage::from_pixels(4, 4, vec![7; 16]);
        let mut pixels = vec![7; 16];
        pixels[9] ^= 1;
        let b = GrayImage::from_pixels(4, 4, pixels);
        assert_ne!(reference(&a), reference(&b));
    }
}
