//! 8×8 block DCT with shift quantization over the whole frame — the
//! jpeg.encode proxy kernel (transform + quantize dominate JPEG's compute
//! on MCU-class cores).
//!
//! Each block is transformed as `Y = C·X·Cᵀ` with the orthonormal DCT
//! matrix in Q12 fixed point, then quantized by per-coefficient
//! arithmetic right shifts. The datapath multiply is
//! `(mulh << 4) + (mul >> 12)`; the reference mirrors it bit-for-bit.

use nvp_isa::asm::assemble;

use super::Layout;
use crate::{GrayImage, KernelInstance, KernelKind, WorkloadError};

const B: usize = 8;
const Q: f64 = 4096.0;

/// The datapath's Q12 multiply.
pub(super) fn qmul12(a: i16, b: i16) -> i16 {
    let p = i32::from(a) * i32::from(b);
    ((p >> 12) as u16) as i16
}

/// Orthonormal 8-point DCT matrix in Q12.
fn dct_matrix() -> Vec<i16> {
    let mut c = Vec::with_capacity(B * B);
    for u in 0..B {
        let a = if u == 0 { (1.0 / B as f64).sqrt() } else { (2.0 / B as f64).sqrt() };
        for v in 0..B {
            let val = a
                * ((2.0 * v as f64 + 1.0) * u as f64 * std::f64::consts::PI / (2.0 * B as f64))
                    .cos();
            c.push((val * Q).round() as i16);
        }
    }
    c
}

/// Per-coefficient quantization shifts: coarser for higher frequencies.
fn quant_shifts() -> Vec<u16> {
    let mut q = Vec::with_capacity(B * B);
    for u in 0..B {
        for w in 0..B {
            q.push(((1 + (u + w) / 2) as u16).min(6));
        }
    }
    q
}

fn reference(img: &GrayImage) -> Vec<u16> {
    let (w, h) = (img.width(), img.height());
    assert!(w % B == 0 && h % B == 0, "frame must be a multiple of 8");
    let c = dct_matrix();
    let qsh = quant_shifts();
    let mut out = vec![0u16; w * h];
    for by in 0..h / B {
        for bx in 0..w / B {
            let mut t = [0i16; B * B];
            // Pass 1: T = C·X.
            for u in 0..B {
                for k in 0..B {
                    let mut acc = 0i16;
                    for v in 0..B {
                        let x = i16::from(img.at(bx * B + k, by * B + v));
                        acc = acc.wrapping_add(qmul12(c[u * B + v], x));
                    }
                    t[u * B + k] = acc;
                }
            }
            // Pass 2: Y = T·Cᵀ, then quantize.
            for u in 0..B {
                for wi in 0..B {
                    let mut acc = 0i16;
                    for k in 0..B {
                        acc = acc.wrapping_add(qmul12(t[u * B + k], c[wi * B + k]));
                    }
                    let shifted = acc >> qsh[u * B + wi];
                    out[(by * B + u) * w + bx * B + wi] = shifted as u16;
                }
            }
        }
    }
    out
}

pub(crate) fn build(img: &GrayImage) -> Result<KernelInstance, WorkloadError> {
    let (w, h) = (img.width(), img.height());
    assert!(w % B == 0 && h % B == 0, "frame must be a multiple of 8 for dct8");
    let n = w * h;
    // Scratch: C matrix (64) + quant shifts (64) + T buffer (64).
    let lay = Layout::for_image(img, n, 3 * B * B);
    let cmat = lay.scr;
    let qsh_addr = cmat + (B * B) as u16;
    let tbuf = qsh_addr + (B * B) as u16;
    let src = format!(
        r"
.equ W, {w}
.equ H, {h}
.equ BW, {bw}
.equ BH, {bh}
.equ IN, {inp}
.equ OUT, {out}
.equ CMAT, {cmat}
.equ QSH, {qsh}
.equ TBUF, {tbuf}
    li   r1, 0              ; block row
byloop:
    li   r2, 0              ; block column
bxloop:
    ; input block base address -> r5
    li   r4, W
    slli r5, r1, 3
    mul  r5, r5, r4
    slli r6, r2, 3
    add  r5, r5, r6
    addi r5, r5, IN
    ; pass 1: TBUF = C * X
    li   r6, 0              ; u
p1u:
    li   r7, 0              ; k
p1k:
    li   r9, 0              ; acc
    li   r8, 0              ; v
p1v:
    slli r10, r6, 3
    add  r10, r10, r8
    addi r10, r10, CMAT
    lw   r11, 0(r10)        ; c[u][v]
    li   r10, W
    mul  r10, r10, r8
    add  r10, r10, r5
    add  r10, r10, r7
    lw   r12, 0(r10)        ; x[v][k]
    mulh r10, r11, r12
    mul  r13, r11, r12
    slli r10, r10, 4
    srli r13, r13, 12
    add  r10, r10, r13
    add  r9, r9, r10
    addi r8, r8, 1
    li   r10, 8
    bne  r8, r10, p1v
    slli r10, r6, 3
    add  r10, r10, r7
    addi r10, r10, TBUF
    sw   r9, 0(r10)
    addi r7, r7, 1
    li   r10, 8
    bne  r7, r10, p1k
    addi r6, r6, 1
    li   r10, 8
    bne  r6, r10, p1u
    ; output block base address -> r3
    li   r4, W
    slli r3, r1, 3
    mul  r3, r3, r4
    slli r4, r2, 3
    add  r3, r3, r4
    addi r3, r3, OUT
    ; pass 2: Y = TBUF * C', then quantize by shift
    li   r6, 0              ; u
p2u:
    li   r7, 0              ; w
p2w:
    li   r9, 0              ; acc
    li   r8, 0              ; k
p2k:
    slli r10, r6, 3
    add  r10, r10, r8
    addi r10, r10, TBUF
    lw   r11, 0(r10)
    slli r10, r7, 3
    add  r10, r10, r8
    addi r10, r10, CMAT
    lw   r12, 0(r10)
    mulh r10, r11, r12
    mul  r13, r11, r12
    slli r10, r10, 4
    srli r13, r13, 12
    add  r10, r10, r13
    add  r9, r9, r10
    addi r8, r8, 1
    li   r10, 8
    bne  r8, r10, p2k
    slli r10, r6, 3
    add  r10, r10, r7
    addi r10, r10, QSH
    lw   r11, 0(r10)
    sra  r9, r9, r11
    li   r10, W
    mul  r10, r10, r6
    add  r10, r10, r3
    add  r10, r10, r7
    sw   r9, 0(r10)
    addi r7, r7, 1
    li   r10, 8
    bne  r7, r10, p2w
    addi r6, r6, 1
    li   r10, 8
    bne  r6, r10, p2u
    addi r2, r2, 1
    li   r10, BW
    bne  r2, r10, bxloop
    addi r1, r1, 1
    li   r10, BH
    bne  r1, r10, byloop
    halt
",
        w = w,
        h = h,
        bw = w / B,
        bh = h / B,
        inp = lay.input,
        out = lay.out,
        cmat = cmat,
        qsh = qsh_addr,
        tbuf = tbuf,
    );
    let mut program = assemble(&src)?;
    program.add_data(lay.input, &img.to_words());
    program.add_data(cmat, &dct_matrix().iter().map(|&v| v as u16).collect::<Vec<_>>());
    program.add_data(qsh_addr, &quant_shifts());
    Ok(KernelInstance::new(KernelKind::Dct8, program, lay.out, reference(img), lay.min_dmem, w, h))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::check_kernel;
    use crate::KernelKind;

    #[test]
    fn matches_reference() {
        check_kernel(KernelKind::Dct8, 19, 16, 16);
    }

    #[test]
    fn dct_matrix_rows_orthonormal() {
        let c = dct_matrix();
        for u in 0..B {
            let dot: f64 = (0..B).map(|v| f64::from(c[u * B + v]) / Q).map(|x| x * x).sum();
            assert!((dot - 1.0).abs() < 0.01, "row {u} norm {dot}");
        }
    }

    #[test]
    fn constant_block_energy_in_dc() {
        let img = GrayImage::from_pixels(8, 8, vec![128; 64]);
        let out = reference(&img);
        let dc = out[0] as i16;
        assert!(dc > 100, "DC coefficient carries the block mean, got {dc}");
        // AC coefficients are (near) zero for a flat block.
        for (i, &v) in out.iter().enumerate().skip(1) {
            if i % 8 != 0 || i >= 8 {
                assert!((v as i16).abs() <= 8, "AC[{i}] = {}", v as i16);
            }
        }
    }

    #[test]
    fn quant_shifts_grow_with_frequency() {
        let q = quant_shifts();
        assert_eq!(q[0], 1);
        assert!(q[B * B - 1] >= q[0]);
        assert!(q.iter().all(|&s| s <= 6));
    }
}
