//! 2×2 average-pooling downsampler — the thumbnailing step battery-free
//! camera nodes run before deciding whether a frame is worth the radio
//! energy of full transmission.
//!
//! `out[y][x] = (in[2y][2x] + in[2y][2x+1] + in[2y+1][2x] +
//! in[2y+1][2x+1]) >> 2` over a half-resolution output grid.

use nvp_isa::asm::assemble;

use super::Layout;
use crate::{GrayImage, KernelInstance, KernelKind, WorkloadError};

fn reference(img: &GrayImage) -> Vec<u16> {
    let (w, h) = (img.width() / 2, img.height() / 2);
    let mut out = vec![0u16; w * h];
    for y in 0..h {
        for x in 0..w {
            let sum = u16::from(img.at(2 * x, 2 * y))
                + u16::from(img.at(2 * x + 1, 2 * y))
                + u16::from(img.at(2 * x, 2 * y + 1))
                + u16::from(img.at(2 * x + 1, 2 * y + 1));
            out[y * w + x] = sum >> 2;
        }
    }
    out
}

pub(crate) fn build(img: &GrayImage) -> Result<KernelInstance, WorkloadError> {
    assert!(
        img.width().is_multiple_of(2) && img.height().is_multiple_of(2),
        "downsample needs even frame dimensions"
    );
    let (ow, oh) = (img.width() / 2, img.height() / 2);
    let lay = Layout::for_image(img, ow * oh, 0);
    let src = format!(
        r"
.equ W, {w}
.equ OW, {ow}
.equ OH, {oh}
.equ IN, {inp}
.equ OUT, {out}
    li   r1, 0              ; output row
yloop:
    ; r3 = input row base = IN + (2*y)*W ; r9 = OUT + y*OW
    li   r4, W
    slli r5, r1, 1
    mul  r3, r5, r4
    addi r3, r3, IN
    li   r4, OW
    mul  r9, r1, r4
    addi r9, r9, OUT
    li   r2, 0              ; output column
xloop:
    lw   r5, 0(r3)
    lw   r6, 1(r3)
    add  r5, r5, r6
    lw   r6, W(r3)
    add  r5, r5, r6
    lw   r6, W+1(r3)
    add  r5, r5, r6
    srli r5, r5, 2
    sw   r5, 0(r9)
    addi r3, r3, 2
    addi r9, r9, 1
    addi r2, r2, 1
    li   r6, OW
    bne  r2, r6, xloop
    addi r1, r1, 1
    li   r6, OH
    bne  r1, r6, yloop
    halt
",
        w = lay.w,
        ow = ow,
        oh = oh,
        inp = lay.input,
        out = lay.out,
    );
    let mut program = assemble(&src)?;
    program.add_data(lay.input, &img.to_words());
    Ok(KernelInstance::new(
        KernelKind::Downsample,
        program,
        lay.out,
        reference(img),
        lay.min_dmem,
        lay.w,
        lay.h,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::check_kernel;
    use crate::KernelKind;

    #[test]
    fn matches_reference() {
        check_kernel(KernelKind::Downsample, 35, 16, 16);
        check_kernel(KernelKind::Downsample, 36, 8, 12);
    }

    #[test]
    fn constant_image_pools_to_itself() {
        let img = GrayImage::from_pixels(8, 8, vec![120; 64]);
        assert!(reference(&img).iter().all(|&v| v == 120));
    }

    #[test]
    fn known_block_average() {
        let img = GrayImage::from_pixels(2, 2, vec![10, 20, 30, 40]);
        assert_eq!(reference(&img), vec![25]);
    }

    #[test]
    fn output_is_quarter_size() {
        let img = GrayImage::synthetic(37, 16, 16);
        assert_eq!(reference(&img).len(), 64);
    }
}
