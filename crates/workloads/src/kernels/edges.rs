//! Binary edge map: Sobel magnitude thresholded to 0/255 (susan.edges
//! proxy).

use super::sobel::{gradient_mag, gradient_program};
use super::Layout;
use crate::{GrayImage, KernelInstance, KernelKind, WorkloadError};

/// Gradient-magnitude threshold for an edge.
pub(super) const THRESHOLD: u16 = 80;

fn reference(img: &GrayImage) -> Vec<u16> {
    let (w, h) = (img.width(), img.height());
    let mut out = vec![0u16; w * h];
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            // The assembly compares the *signed* magnitude against the
            // threshold (ble = signed ≤); mirror exactly.
            let mag = gradient_mag(img, x, y);
            out[y * w + x] = if mag > THRESHOLD as i16 { 255 } else { 0 };
        }
    }
    out
}

pub(crate) fn build(img: &GrayImage) -> Result<KernelInstance, WorkloadError> {
    let lay = Layout::for_image(img, img.width() * img.height(), 0);
    let mut program = gradient_program(&lay, Some(THRESHOLD))?;
    program.add_data(lay.input, &img.to_words());
    Ok(KernelInstance::new(
        KernelKind::Edges,
        program,
        lay.out,
        reference(img),
        lay.min_dmem,
        lay.w,
        lay.h,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::check_kernel;
    use crate::KernelKind;

    #[test]
    fn matches_reference() {
        check_kernel(KernelKind::Edges, 5, 16, 16);
        check_kernel(KernelKind::Edges, 6, 12, 20);
    }

    #[test]
    fn output_is_binary() {
        let img = GrayImage::synthetic(7, 16, 16);
        let r = reference(&img);
        assert!(r.iter().all(|&v| v == 0 || v == 255));
        assert!(r.contains(&255), "synthetic frames contain edges");
    }
}
