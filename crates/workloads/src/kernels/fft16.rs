//! 16-point radix-2 decimation-in-time FFT in Q14 fixed point, over the
//! first 16 pixels of the frame (a spectrum-analysis kernel: the survey's
//! gas/water-quality sensing workloads are FFT-based).
//!
//! The butterfly multiplication is the exact sequence the datapath runs:
//! `(mulh << 2) + (mul >> 14)` — a 32-bit product arithmetic-shifted by
//! 14 and truncated to 16 bits. The reference reproduces it bit-for-bit.

use nvp_isa::asm::assemble;

use super::Layout;
use crate::{GrayImage, KernelInstance, KernelKind, WorkloadError};

const N: usize = 16;
/// Q14 fixed-point scale.
const Q: f64 = 16384.0;

/// The datapath's Q14 multiply: truncating 32-bit product >> 14, wrapped
/// to 16 bits.
pub(super) fn qmul14(a: i16, b: i16) -> i16 {
    let p = i32::from(a) * i32::from(b);
    ((p >> 14) as u16) as i16
}

fn twiddles() -> (Vec<i16>, Vec<i16>) {
    let mut wr = Vec::with_capacity(N / 2);
    let mut wi = Vec::with_capacity(N / 2);
    for k in 0..N / 2 {
        let ang = -2.0 * std::f64::consts::PI * k as f64 / N as f64;
        wr.push((ang.cos() * Q).round() as i16);
        wi.push((ang.sin() * Q).round() as i16);
    }
    (wr, wi)
}

fn bit_reverse_table() -> Vec<u16> {
    (0..N as u16)
        .map(|i| {
            let mut v = 0;
            for b in 0..4 {
                v |= ((i >> b) & 1) << (3 - b);
            }
            v
        })
        .collect()
}

/// Reference FFT mirroring the assembly's arithmetic exactly.
fn reference(img: &GrayImage) -> Vec<u16> {
    let (twr, twi) = twiddles();
    let br = bit_reverse_table();
    let mut re = [0i16; N];
    let mut im = [0i16; N];
    for k in 0..N {
        re[k] = i16::from(img.pixels()[usize::from(br[k])]);
    }
    let mut len = 2;
    while len <= N {
        let half = len / 2;
        let stride = N / len;
        let mut i = 0;
        while i < N {
            for j in 0..half {
                let idx = j * stride;
                let (wr, wi) = (twr[idx], twi[idx]);
                let (a, b) = (i + j, i + j + half);
                let tr = qmul14(re[b], wr).wrapping_sub(qmul14(im[b], wi));
                let ti = qmul14(re[b], wi).wrapping_add(qmul14(im[b], wr));
                let (ra, ia) = (re[a], im[a]);
                re[b] = ra.wrapping_sub(tr);
                im[b] = ia.wrapping_sub(ti);
                re[a] = ra.wrapping_add(tr);
                im[a] = ia.wrapping_add(ti);
            }
            i += len;
        }
        len *= 2;
    }
    re.iter().chain(im.iter()).map(|&v| v as u16).collect()
}

pub(crate) fn build(img: &GrayImage) -> Result<KernelInstance, WorkloadError> {
    assert!(img.width() * img.height() >= N, "frame too small for fft16");
    // Layout: OUT holds re[16] then im[16]; tables in scratch.
    let lay = Layout::for_image(img, 2 * N, 2 * N);
    let br_addr = lay.scr;
    let twr_addr = lay.scr + N as u16;
    let twi_addr = twr_addr + (N / 2) as u16;
    let src = format!(
        r"
.equ IN, {inp}
.equ OUT, {out}
.equ BR, {br}
.equ TWR, {twr}
.equ TWI, {twi}
    ; bit-reversed copy, imaginary parts zeroed
    li   r1, 0
copy:
    li   r2, BR
    add  r2, r2, r1
    lw   r3, 0(r2)
    li   r4, IN
    add  r4, r4, r3
    lw   r5, 0(r4)
    li   r6, OUT
    add  r6, r6, r1
    sw   r5, 0(r6)
    sw   r0, 16(r6)
    addi r1, r1, 1
    li   r7, 16
    bne  r1, r7, copy
    ; stages
    li   r1, 2              ; len
lenloop:
    srli r13, r1, 1         ; half
    li   r2, 0              ; i
iloop:
    li   r3, 0              ; j
jloop:
    li   r5, OUT
    add  r5, r5, r2
    add  r5, r5, r3         ; &re[a]
    add  r6, r5, r13        ; &re[b]
    lw   r7, 0(r6)          ; re_b
    lw   r8, 16(r6)         ; im_b
    ; twiddle index = j * (16 / len)
    li   r4, 16
    divu r4, r4, r1
    mul  r4, r4, r3
    li   r10, TWR
    add  r10, r10, r4
    lw   r9, 0(r10)         ; wr
    li   r11, TWI
    add  r11, r11, r4
    lw   r10, 0(r11)        ; wi
    ; tr = q(re_b*wr) - q(im_b*wi)
    mulh r11, r7, r9
    mul  r12, r7, r9
    slli r11, r11, 2
    srli r12, r12, 14
    add  r4, r11, r12
    mulh r11, r8, r10
    mul  r12, r8, r10
    slli r11, r11, 2
    srli r12, r12, 14
    add  r11, r11, r12
    sub  r4, r4, r11        ; tr
    ; ti = q(re_b*wi) + q(im_b*wr)
    mulh r11, r7, r10
    mul  r12, r7, r10
    slli r11, r11, 2
    srli r12, r12, 14
    add  r10, r11, r12
    mulh r11, r8, r9
    mul  r12, r8, r9
    slli r11, r11, 2
    srli r12, r12, 14
    add  r11, r11, r12
    add  r10, r10, r11      ; ti
    ; butterfly update
    lw   r7, 0(r5)          ; re_a
    lw   r8, 16(r5)         ; im_a
    sub  r11, r7, r4
    sw   r11, 0(r6)
    sub  r11, r8, r10
    sw   r11, 16(r6)
    add  r7, r7, r4
    sw   r7, 0(r5)
    add  r8, r8, r10
    sw   r8, 16(r5)
    addi r3, r3, 1
    bne  r3, r13, jloop
    add  r2, r2, r1
    li   r4, 16
    bltu r2, r4, iloop
    slli r1, r1, 1
    li   r4, 32
    bne  r1, r4, lenloop
    halt
",
        inp = lay.input,
        out = lay.out,
        br = br_addr,
        twr = twr_addr,
        twi = twi_addr,
    );
    let mut program = assemble(&src)?;
    program.add_data(lay.input, &img.to_words());
    program.add_data(br_addr, &bit_reverse_table());
    let (twr, twi) = twiddles();
    program.add_data(twr_addr, &twr.iter().map(|&v| v as u16).collect::<Vec<_>>());
    program.add_data(twi_addr, &twi.iter().map(|&v| v as u16).collect::<Vec<_>>());
    Ok(KernelInstance::new(
        KernelKind::Fft16,
        program,
        lay.out,
        reference(img),
        lay.min_dmem,
        lay.w,
        lay.h,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::check_kernel;
    use crate::KernelKind;

    #[test]
    fn matches_reference() {
        check_kernel(KernelKind::Fft16, 17, 16, 16);
        check_kernel(KernelKind::Fft16, 18, 16, 16);
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn dc_input_concentrates_in_bin_zero() {
        let img = GrayImage::from_pixels(16, 1, vec![100; 16]);
        let out = reference(&img);
        let re0 = out[0] as i16;
        assert_eq!(re0, 1600, "DC bin holds N * value");
        for k in 1..16 {
            assert!(
                (out[k] as i16).abs() <= 16,
                "non-DC bin {k} should be ~0, got {}",
                out[k] as i16
            );
        }
    }

    #[test]
    fn single_tone_peaks_at_its_bin() {
        // x[n] = 100 + 100·cos(2πn/16) → peaks at bins 1 and 15.
        let pixels: Vec<u8> = (0..16)
            .map(|n| (100.0 + 100.0 * (2.0 * std::f64::consts::PI * n as f64 / 16.0).cos()) as u8)
            .collect();
        let img = GrayImage::from_pixels(16, 1, pixels);
        let out = reference(&img);
        let mag = |k: usize| {
            let re = f64::from(out[k] as i16);
            let im = f64::from(out[16 + k] as i16);
            (re * re + im * im).sqrt()
        };
        let peak = mag(1);
        for k in 2..15 {
            assert!(mag(k) < peak / 4.0, "bin {k} = {} vs peak {peak}", mag(k));
        }
    }

    #[test]
    fn twiddle_table_shape() {
        let (wr, wi) = twiddles();
        assert_eq!(wr[0], 16384);
        assert_eq!(wi[0], 0);
        assert_eq!(wi[4], -16384, "W^4 = -j");
        assert_eq!(bit_reverse_table(), vec![0, 8, 4, 12, 2, 10, 6, 14, 1, 9, 5, 13, 3, 11, 7, 15]);
    }
}
