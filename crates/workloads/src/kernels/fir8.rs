//! 8-tap moving-average FIR filter over the frame treated as a 1-D
//! sample stream — the classic DSP kernel of heart-rate/spectrum
//! pre-processing chains.
//!
//! `out[i] = (Σ in[i..i+8]) >> 3` for every full window; trailing
//! positions (fewer than 8 samples left) stay zero.

use nvp_isa::asm::assemble;

use super::Layout;
use crate::{GrayImage, KernelInstance, KernelKind, WorkloadError};

const TAPS: usize = 8;

fn reference(img: &GrayImage) -> Vec<u16> {
    let data = img.to_words();
    let n = data.len();
    let mut out = vec![0u16; n];
    for i in 0..=n.saturating_sub(TAPS) {
        let sum: u16 = data[i..i + TAPS].iter().fold(0u16, |acc, &v| acc.wrapping_add(v));
        out[i] = sum >> 3;
    }
    out
}

pub(crate) fn build(img: &GrayImage) -> Result<KernelInstance, WorkloadError> {
    assert!(img.width() * img.height() >= TAPS, "frame too small for fir8");
    let lay = Layout::for_image(img, img.width() * img.height(), 0);
    let src = format!(
        r"
.equ N, {n}
.equ IN, {inp}
.equ OUT, {out}
    li   r1, IN             ; window pointer
    li   r2, OUT            ; output pointer
    li   r3, N-7            ; full windows
loop:
    lw   r4, 0(r1)
    lw   r5, 1(r1)
    add  r4, r4, r5
    lw   r5, 2(r1)
    add  r4, r4, r5
    lw   r5, 3(r1)
    add  r4, r4, r5
    lw   r5, 4(r1)
    add  r4, r4, r5
    lw   r5, 5(r1)
    add  r4, r4, r5
    lw   r5, 6(r1)
    add  r4, r4, r5
    lw   r5, 7(r1)
    add  r4, r4, r5
    srli r4, r4, 3
    sw   r4, 0(r2)
    addi r1, r1, 1
    addi r2, r2, 1
    addi r3, r3, -1
    bnez r3, loop
    halt
",
        n = lay.n,
        inp = lay.input,
        out = lay.out,
    );
    let mut program = assemble(&src)?;
    program.add_data(lay.input, &img.to_words());
    Ok(KernelInstance::new(
        KernelKind::Fir8,
        program,
        lay.out,
        reference(img),
        lay.min_dmem,
        lay.w,
        lay.h,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::check_kernel;
    use crate::KernelKind;

    #[test]
    fn matches_reference() {
        check_kernel(KernelKind::Fir8, 33, 16, 16);
        check_kernel(KernelKind::Fir8, 34, 8, 8);
    }

    #[test]
    fn constant_signal_passes_through() {
        let img = GrayImage::from_pixels(16, 1, vec![96; 16]);
        let out = reference(&img);
        for &v in &out[..16 - TAPS + 1] {
            assert_eq!(v, 96);
        }
        assert!(out[16 - TAPS + 1..].iter().all(|&v| v == 0), "tail stays zero");
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn smooths_an_impulse() {
        let mut pixels = vec![0u8; 32];
        pixels[10] = 200;
        let img = GrayImage::from_pixels(32, 1, pixels);
        let out = reference(&img);
        // The impulse spreads across 8 output positions at 1/8 height.
        for i in 3..=10 {
            assert_eq!(out[i], 25, "position {i}");
        }
        assert_eq!(out[2], 0);
        assert_eq!(out[11], 0);
    }
}
