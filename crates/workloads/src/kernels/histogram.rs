//! 16-bin intensity histogram (spectrum/level analysis building block).

use nvp_isa::asm::assemble;

use super::Layout;
use crate::{GrayImage, KernelInstance, KernelKind, WorkloadError};

const BINS: usize = 16;

fn reference(img: &GrayImage) -> Vec<u16> {
    let mut out = vec![0u16; BINS];
    for &p in img.pixels() {
        out[usize::from(p >> 4)] = out[usize::from(p >> 4)].wrapping_add(1);
    }
    out
}

pub(crate) fn build(img: &GrayImage) -> Result<KernelInstance, WorkloadError> {
    let lay = Layout::for_image(img, BINS, 0);
    let src = format!(
        r"
.equ N, {n}
.equ IN, {inp}
.equ OUT, {out}
    li   r1, IN
    li   r2, N
loop:
    lw   r3, 0(r1)
    srli r3, r3, 4          ; bin index
    li   r4, OUT
    add  r4, r4, r3
    lw   r5, 0(r4)
    addi r5, r5, 1
    sw   r5, 0(r4)
    addi r1, r1, 1
    addi r2, r2, -1
    bnez r2, loop
    halt
",
        n = lay.n,
        inp = lay.input,
        out = lay.out,
    );
    let mut program = assemble(&src)?;
    program.add_data(lay.input, &img.to_words());
    Ok(KernelInstance::new(
        KernelKind::Histogram,
        program,
        lay.out,
        reference(img),
        lay.min_dmem,
        lay.w,
        lay.h,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::check_kernel;
    use crate::KernelKind;

    #[test]
    fn matches_reference() {
        check_kernel(KernelKind::Histogram, 30, 16, 16);
        check_kernel(KernelKind::Histogram, 31, 10, 10);
    }

    #[test]
    fn bins_sum_to_pixel_count() {
        let img = GrayImage::synthetic(32, 20, 20);
        let h = reference(&img);
        assert_eq!(h.iter().map(|&c| u32::from(c)).sum::<u32>(), 400);
    }

    #[test]
    fn known_distribution() {
        let img = GrayImage::from_pixels(4, 1, vec![0, 15, 16, 255]);
        let h = reference(&img);
        assert_eq!(h[0], 2);
        assert_eq!(h[1], 1);
        assert_eq!(h[15], 1);
    }
}
