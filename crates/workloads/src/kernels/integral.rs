//! Integral image (summed-area table) with wrapping 16-bit sums.
//!
//! The table is computed as `ii(y,x) = rowsum(y,0..=x) + ii(y-1,x)`,
//! wrapping modulo 2¹⁶ exactly as the 16-bit datapath does; the reference
//! wraps identically, so outputs are bit-exact even for frames whose true
//! sums exceed 65535.

use nvp_isa::asm::assemble;

use super::Layout;
use crate::{GrayImage, KernelInstance, KernelKind, WorkloadError};

fn reference(img: &GrayImage) -> Vec<u16> {
    let (w, h) = (img.width(), img.height());
    let mut out = vec![0u16; w * h];
    for y in 0..h {
        let mut rowsum = 0u16;
        for x in 0..w {
            rowsum = rowsum.wrapping_add(u16::from(img.at(x, y)));
            let above = if y > 0 { out[(y - 1) * w + x] } else { 0 };
            out[y * w + x] = rowsum.wrapping_add(above);
        }
    }
    out
}

pub(crate) fn build(img: &GrayImage) -> Result<KernelInstance, WorkloadError> {
    let lay = Layout::for_image(img, img.width() * img.height(), 0);
    let src = format!(
        r"
.equ W, {w}
.equ H, {h}
.equ IN, {inp}
.equ OUT, {out}
    li   r1, 0              ; y
yloop:
    li   r4, W
    mul  r3, r1, r4
    addi r5, r3, IN         ; input pointer
    addi r6, r3, OUT        ; output pointer
    li   r2, 0              ; x
    li   r7, 0              ; running row sum
xloop:
    lw   r8, 0(r5)
    add  r7, r7, r8
    mov  r9, r7
    beqz r1, firstrow
    lw   r10, 0-W(r6)       ; table value one row up
    add  r9, r9, r10
firstrow:
    sw   r9, 0(r6)
    addi r5, r5, 1
    addi r6, r6, 1
    addi r2, r2, 1
    li   r8, W
    bne  r2, r8, xloop
    addi r1, r1, 1
    li   r8, H
    bne  r1, r8, yloop
    halt
",
        w = lay.w,
        h = lay.h,
        inp = lay.input,
        out = lay.out,
    );
    let mut program = assemble(&src)?;
    program.add_data(lay.input, &img.to_words());
    Ok(KernelInstance::new(
        KernelKind::Integral,
        program,
        lay.out,
        reference(img),
        lay.min_dmem,
        lay.w,
        lay.h,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::check_kernel;
    use crate::KernelKind;

    #[test]
    fn matches_reference() {
        check_kernel(KernelKind::Integral, 14, 16, 16);
        check_kernel(KernelKind::Integral, 15, 8, 24);
    }

    #[test]
    fn small_table_by_hand() {
        let img = GrayImage::from_pixels(2, 2, vec![1, 2, 3, 4]);
        assert_eq!(reference(&img), vec![1, 3, 4, 10]);
    }

    #[test]
    fn bottom_right_is_wrapped_total() {
        let img = GrayImage::synthetic(16, 16, 16);
        let total: u16 = img.pixels().iter().fold(0u16, |acc, &p| acc.wrapping_add(u16::from(p)));
        let r = reference(&img);
        assert_eq!(r[16 * 16 - 1], total);
    }

    #[test]
    fn region_sum_via_table() {
        // Sum of a small region via the 4-corner identity (no wrap here).
        let img = GrayImage::from_pixels(
            4,
            4,
            vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16],
        );
        let t = reference(&img);
        let ii = |x: usize, y: usize| i32::from(t[y * 4 + x]);
        // Region (1..=2, 1..=2): 6+7+10+11 = 34.
        let sum = ii(2, 2) - ii(0, 2) - ii(2, 0) + ii(0, 0);
        assert_eq!(sum, 34);
    }
}
