//! 8×8 matrix multiply of two frame tiles (wrapping 16-bit arithmetic) —
//! the dense-linear-algebra kernel of feature-extraction pipelines.
//!
//! `A` is the 8×8 tile at the frame origin, `B` the 8×8 tile beside it
//! (columns 8–15); `C = A·B` with products and sums wrapping modulo 2¹⁶.

use nvp_isa::asm::assemble;

use super::Layout;
use crate::{GrayImage, KernelInstance, KernelKind, WorkloadError};

const B: usize = 8;

fn reference(img: &GrayImage) -> Vec<u16> {
    let a = |i: usize, k: usize| u16::from(img.at(k, i));
    let b = |k: usize, j: usize| u16::from(img.at(B + j, k));
    let mut out = vec![0u16; B * B];
    for i in 0..B {
        for j in 0..B {
            let mut acc = 0u16;
            for k in 0..B {
                acc = acc.wrapping_add(a(i, k).wrapping_mul(b(k, j)));
            }
            out[i * B + j] = acc;
        }
    }
    out
}

pub(crate) fn build(img: &GrayImage) -> Result<KernelInstance, WorkloadError> {
    assert!(img.width() >= 2 * B && img.height() >= B, "matmul8 needs a frame at least 16x8");
    let lay = Layout::for_image(img, B * B, 0);
    let src = format!(
        r"
.equ W, {w}
.equ IN, {inp}
.equ OUT, {out}
    li   r1, 0              ; i
iloop:
    li   r2, 0              ; j
jloop:
    li   r9, 0              ; acc
    li   r3, 0              ; k
kloop:
    li   r4, W
    mul  r5, r1, r4
    add  r5, r5, r3
    addi r5, r5, IN
    lw   r6, 0(r5)          ; a[i][k]
    mul  r5, r3, r4
    add  r5, r5, r2
    addi r5, r5, IN+8
    lw   r7, 0(r5)          ; b[k][j]
    mul  r6, r6, r7
    add  r9, r9, r6
    addi r3, r3, 1
    li   r4, 8
    bne  r3, r4, kloop
    slli r5, r1, 3
    add  r5, r5, r2
    addi r5, r5, OUT
    sw   r9, 0(r5)
    addi r2, r2, 1
    li   r4, 8
    bne  r2, r4, jloop
    addi r1, r1, 1
    li   r4, 8
    bne  r1, r4, iloop
    halt
",
        w = lay.w,
        inp = lay.input,
        out = lay.out,
    );
    let mut program = assemble(&src)?;
    program.add_data(lay.input, &img.to_words());
    Ok(KernelInstance::new(
        KernelKind::MatMul8,
        program,
        lay.out,
        reference(img),
        lay.min_dmem,
        lay.w,
        lay.h,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::check_kernel;
    use crate::KernelKind;

    #[test]
    fn matches_reference() {
        check_kernel(KernelKind::MatMul8, 28, 16, 16);
        check_kernel(KernelKind::MatMul8, 29, 24, 12);
    }

    #[test]
    fn identity_multiplication() {
        // A = arbitrary tile, B = identity → C = A.
        let mut pixels = vec![0u8; 16 * 8];
        for y in 0..8 {
            for x in 0..8 {
                pixels[y * 16 + x] = (y * 8 + x + 1) as u8;
            }
            pixels[y * 16 + 8 + y] = 1; // B identity
        }
        let img = GrayImage::from_pixels(16, 8, pixels);
        let out = reference(&img);
        for y in 0..8 {
            for x in 0..8 {
                assert_eq!(out[y * 8 + x], (y * 8 + x + 1) as u16);
            }
        }
    }

    #[test]
    fn wrapping_is_intentional() {
        // 255 * 255 * 8 overflows 16 bits; both sides must agree.
        let img = GrayImage::from_pixels(16, 8, vec![255; 128]);
        let expected = (0..8).fold(0u16, |acc, _| acc.wrapping_add(255u16.wrapping_mul(255)));
        assert!(reference(&img).iter().all(|&v| v == expected));
    }
}
