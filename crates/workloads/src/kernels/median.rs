//! 3×3 median filter: bubble-sorts each 9-pixel window in scratch memory
//! and keeps the middle element (salt-and-pepper denoising).

use nvp_isa::asm::assemble;

use super::Layout;
use crate::{GrayImage, KernelInstance, KernelKind, WorkloadError};

fn reference(img: &GrayImage) -> Vec<u16> {
    let (w, h) = (img.width(), img.height());
    let mut out = vec![0u16; w * h];
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let mut window = [0u8; 9];
            let mut k = 0;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    window[k] = img.at((x as i32 + dx) as usize, (y as i32 + dy) as usize);
                    k += 1;
                }
            }
            window.sort_unstable();
            out[y * w + x] = u16::from(window[4]);
        }
    }
    out
}

pub(crate) fn build(img: &GrayImage) -> Result<KernelInstance, WorkloadError> {
    let lay = Layout::for_image(img, img.width() * img.height(), 9);
    let src = format!(
        r"
.equ W, {w}
.equ H, {h}
.equ IN, {inp}
.equ OUT, {out}
.equ SCR, {scr}
    li   r1, 1              ; y
yloop:
    li   r4, W
    mul  r3, r1, r4
    addi r9, r3, OUT+1
    addi r3, r3, IN+1
    li   r2, 1              ; x
xloop:
    ; gather the 3x3 window into SCR[0..9]
    li   r13, SCR
    lw   r4, 0-W-1(r3)
    sw   r4, 0(r13)
    lw   r4, 0-W(r3)
    sw   r4, 1(r13)
    lw   r4, 0-W+1(r3)
    sw   r4, 2(r13)
    lw   r4, 0-1(r3)
    sw   r4, 3(r13)
    lw   r4, 0(r3)
    sw   r4, 4(r13)
    lw   r4, 1(r3)
    sw   r4, 5(r13)
    lw   r4, W-1(r3)
    sw   r4, 6(r13)
    lw   r4, W(r3)
    sw   r4, 7(r13)
    lw   r4, W+1(r3)
    sw   r4, 8(r13)
    ; bubble sort the window
    li   r6, 0              ; pass
sorti:
    li   r7, 0              ; position
sortj:
    add  r10, r13, r7
    lw   r11, 0(r10)
    lw   r12, 1(r10)
    bleu r11, r12, noswap
    sw   r12, 0(r10)
    sw   r11, 1(r10)
noswap:
    addi r7, r7, 1
    li   r5, 8
    sub  r5, r5, r6
    bne  r7, r5, sortj
    addi r6, r6, 1
    li   r5, 8
    bne  r6, r5, sorti
    lw   r4, 4(r13)         ; the median
    sw   r4, 0(r9)
    addi r3, r3, 1
    addi r9, r9, 1
    addi r2, r2, 1
    li   r5, W-1
    bne  r2, r5, xloop
    addi r1, r1, 1
    li   r5, H-1
    bne  r1, r5, yloop
    halt
",
        w = lay.w,
        h = lay.h,
        inp = lay.input,
        out = lay.out,
        scr = lay.scr,
    );
    let mut program = assemble(&src)?;
    program.add_data(lay.input, &img.to_words());
    Ok(KernelInstance::new(
        KernelKind::Median,
        program,
        lay.out,
        reference(img),
        lay.min_dmem,
        lay.w,
        lay.h,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::check_kernel;
    use crate::KernelKind;

    #[test]
    fn matches_reference() {
        check_kernel(KernelKind::Median, 11, 16, 16);
    }

    #[test]
    fn removes_salt_noise() {
        // Flat field with one bright impulse: the median erases it.
        let mut pixels = vec![50u8; 81];
        pixels[4 * 9 + 4] = 255;
        let img = GrayImage::from_pixels(9, 9, pixels);
        let out = reference(&img);
        assert_eq!(out[4 * 9 + 4], 50);
    }

    #[test]
    fn preserves_constant_regions() {
        let img = GrayImage::from_pixels(8, 8, vec![123; 64]);
        let out = reference(&img);
        for y in 1..7 {
            for x in 1..7 {
                assert_eq!(out[y * 8 + x], 123);
            }
        }
    }
}
