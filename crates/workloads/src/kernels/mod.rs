//! Kernel implementations: NV16 assembly builders + exact references.
//!
//! Every kernel follows the same conventions:
//!
//! * the input frame is preloaded at [`crate::INPUT_ADDR`] (one pixel per
//!   16-bit word, ROM-array style, exactly like the published NVP RTL
//!   frameworks initialize their testbenches),
//! * results are written to an output region directly after the input,
//! * scratch/table space follows the output,
//! * the Rust reference mirrors the assembly's fixed-point semantics
//!   bit-for-bit (wrapping 16-bit arithmetic), so equality — not just
//!   similarity — is asserted in tests.

pub(crate) mod corners;
pub(crate) mod crc16;
pub(crate) mod dct8;
pub(crate) mod downsample;
pub(crate) mod edges;
pub(crate) mod fft16;
pub(crate) mod fir8;
pub(crate) mod histogram;
pub(crate) mod integral;
pub(crate) mod matmul8;
pub(crate) mod median;
pub(crate) mod rle;
pub(crate) mod smooth;
pub(crate) mod sobel;
pub(crate) mod strsearch;

use crate::{GrayImage, INPUT_ADDR};

/// Memory layout computed for one kernel instance.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Layout {
    pub w: usize,
    pub h: usize,
    /// Pixels in the frame.
    pub n: usize,
    pub input: u16,
    pub out: u16,
    pub scr: u16,
    pub min_dmem: usize,
}

impl Layout {
    /// Lays out input / output / scratch regions for a frame.
    ///
    /// # Panics
    ///
    /// Panics if the regions exceed the 16-bit address space.
    pub(crate) fn for_image(img: &GrayImage, out_len: usize, scr_len: usize) -> Layout {
        let n = img.width() * img.height();
        let input = INPUT_ADDR;
        let out = usize::from(input) + n;
        let scr = out + out_len;
        let end = scr + scr_len;
        assert!(end <= 0x1_0000, "kernel layout exceeds address space ({end:#x})");
        Layout {
            w: img.width(),
            h: img.height(),
            n,
            input,
            out: out as u16,
            scr: scr as u16,
            min_dmem: end.next_multiple_of(256),
        }
    }
}

/// The absolute-value bit trick used by several kernels, mirrored here so
/// references match the assembly exactly (including `i16::MIN`, which
/// stays negative in both).
pub(crate) fn abs_trick(v: i16) -> i16 {
    let mask = v >> 15;
    (v ^ mask).wrapping_sub(mask)
}

#[cfg(test)]
pub(crate) fn check_kernel(kind: crate::KernelKind, seed: u64, w: usize, h: usize) {
    let img = GrayImage::synthetic(seed, w, h);
    let inst = kind.build(&img).expect("kernel builds");
    let out = inst.run_to_completion().expect("kernel runs");
    assert_eq!(
        out,
        inst.reference(),
        "{kind} output differs from reference on seed {seed} ({w}x{h})"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layout_is_ordered_and_padded() {
        let img = GrayImage::synthetic(1, 16, 16);
        let lay = Layout::for_image(&img, 256, 64);
        assert_eq!(lay.input, INPUT_ADDR);
        assert_eq!(usize::from(lay.out), usize::from(INPUT_ADDR) + 256);
        assert_eq!(usize::from(lay.scr), usize::from(lay.out) + 256);
        assert!(lay.min_dmem >= usize::from(lay.scr) + 64);
        assert_eq!(lay.min_dmem % 256, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds address space")]
    #[allow(unconditional_panic)]
    fn oversized_layout_panics() {
        let img = GrayImage::synthetic(1, 256, 256);
        let _ = Layout::for_image(&img, 65536, 0);
    }

    #[test]
    fn abs_trick_matches_abs() {
        for v in [-32767i16, -100, -1, 0, 1, 100, 32767] {
            assert_eq!(abs_trick(v), v.abs());
        }
        // The one divergence from `abs`: i16::MIN maps to itself.
        assert_eq!(abs_trick(i16::MIN), i16::MIN);
    }
}
