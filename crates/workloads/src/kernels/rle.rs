//! Run-length encoding of the frame (tiff2bw/compression proxy): output
//! is `[pair_count, value₀, run₀, value₁, run₁, …]` with runs capped at
//! 255 (long runs split into chained pairs).

use nvp_isa::asm::assemble;

use super::Layout;
use crate::{GrayImage, KernelInstance, KernelKind, WorkloadError};

const MAX_RUN: u16 = 255;

fn reference(img: &GrayImage) -> Vec<u16> {
    let data = img.to_words();
    let mut pairs: Vec<(u16, u16)> = Vec::new();
    let mut current = data[0];
    let mut run: u16 = 1;
    for &v in &data[1..] {
        if v == current && run < MAX_RUN {
            run += 1;
        } else {
            pairs.push((current, run));
            current = v;
            run = 1;
        }
    }
    pairs.push((current, run));
    let mut out = Vec::with_capacity(1 + 2 * pairs.len());
    out.push(pairs.len() as u16);
    for (v, r) in pairs {
        out.push(v);
        out.push(r);
    }
    out
}

pub(crate) fn build(img: &GrayImage) -> Result<KernelInstance, WorkloadError> {
    let n = img.width() * img.height();
    // Worst case: every pixel differs → 2N pairs words + count.
    let lay = Layout::for_image(img, 2 * n + 1, 0);
    let src = format!(
        r"
.equ N, {n}
.equ IN, {inp}
.equ OUT, {out}
    li   r1, IN             ; input pointer
    li   r2, N              ; words left
    li   r3, OUT+1          ; pair pointer
    li   r4, 0              ; pair count
    lw   r5, 0(r1)          ; current value
    li   r6, 1              ; run length
    addi r1, r1, 1
    addi r2, r2, -1
loop:
    beqz r2, final
    lw   r7, 0(r1)
    addi r1, r1, 1
    addi r2, r2, -1
    bne  r7, r5, flush
    li   r8, {max_run}
    bne  r6, r8, grow
    ; the run is full: emit it and continue with the same value
    sw   r5, 0(r3)
    sw   r6, 1(r3)
    addi r3, r3, 2
    addi r4, r4, 1
    li   r6, 0
grow:
    addi r6, r6, 1
    j    loop
flush:
    sw   r5, 0(r3)
    sw   r6, 1(r3)
    addi r3, r3, 2
    addi r4, r4, 1
    mov  r5, r7
    li   r6, 1
    j    loop
final:
    sw   r5, 0(r3)
    sw   r6, 1(r3)
    addi r4, r4, 1
    li   r3, OUT
    sw   r4, 0(r3)
    halt
",
        n = n,
        inp = lay.input,
        out = lay.out,
        max_run = MAX_RUN,
    );
    let mut program = assemble(&src)?;
    program.add_data(lay.input, &img.to_words());
    Ok(KernelInstance::new(
        KernelKind::Rle,
        program,
        lay.out,
        reference(img),
        lay.min_dmem,
        lay.w,
        lay.h,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::check_kernel;
    use crate::KernelKind;

    #[test]
    fn matches_reference() {
        check_kernel(KernelKind::Rle, 25, 16, 16);
        check_kernel(KernelKind::Rle, 26, 8, 8);
    }

    #[test]
    fn simple_runs() {
        let img = GrayImage::from_pixels(6, 1, vec![5, 5, 5, 9, 9, 1]);
        assert_eq!(reference(&img), vec![3, 5, 3, 9, 2, 1, 1]);
    }

    #[test]
    fn long_runs_split_at_255() {
        let img = GrayImage::from_pixels(300, 1, vec![42; 300]);
        assert_eq!(reference(&img), vec![2, 42, 255, 42, 45]);
    }

    #[test]
    fn decode_round_trip() {
        let img = GrayImage::synthetic(27, 12, 12);
        let encoded = reference(&img);
        let mut decoded = Vec::new();
        let pairs = encoded[0] as usize;
        for p in 0..pairs {
            let v = encoded[1 + 2 * p];
            let r = encoded[2 + 2 * p];
            decoded.extend(std::iter::repeat_n(v, usize::from(r)));
        }
        assert_eq!(decoded, img.to_words());
    }
}
