//! 3×3 box smoothing (susan.smoothing proxy): interior pixels become the
//! integer mean of their 3×3 neighborhood.

use nvp_isa::asm::assemble;

use super::Layout;
use crate::{GrayImage, KernelInstance, KernelKind, WorkloadError};

fn reference(img: &GrayImage) -> Vec<u16> {
    let (w, h) = (img.width(), img.height());
    let mut out = vec![0u16; w * h];
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let mut sum = 0u16;
            for dy in -1i32..=1 {
                for dx in -1i32..=1 {
                    sum += u16::from(img.at((x as i32 + dx) as usize, (y as i32 + dy) as usize));
                }
            }
            out[y * w + x] = sum / 9;
        }
    }
    out
}

pub(crate) fn build(img: &GrayImage) -> Result<KernelInstance, WorkloadError> {
    let lay = Layout::for_image(img, img.width() * img.height(), 0);
    let src = format!(
        r"
.equ W, {w}
.equ H, {h}
.equ IN, {inp}
.equ OUT, {out}
    li   r1, 1              ; y
yloop:
    li   r4, W
    mul  r3, r1, r4
    addi r9, r3, OUT+1
    addi r3, r3, IN+1
    li   r2, 1              ; x
xloop:
    lw   r5, 0-W-1(r3)
    lw   r6, 0-W(r3)
    add  r5, r5, r6
    lw   r6, 0-W+1(r3)
    add  r5, r5, r6
    lw   r6, 0-1(r3)
    add  r5, r5, r6
    lw   r6, 0(r3)
    add  r5, r5, r6
    lw   r6, 1(r3)
    add  r5, r5, r6
    lw   r6, W-1(r3)
    add  r5, r5, r6
    lw   r6, W(r3)
    add  r5, r5, r6
    lw   r6, W+1(r3)
    add  r5, r5, r6
    li   r6, 9
    divu r5, r5, r6
    sw   r5, 0(r9)
    addi r3, r3, 1
    addi r9, r9, 1
    addi r2, r2, 1
    li   r8, W-1
    bne  r2, r8, xloop
    addi r1, r1, 1
    li   r8, H-1
    bne  r1, r8, yloop
    halt
",
        w = lay.w,
        h = lay.h,
        inp = lay.input,
        out = lay.out,
    );
    let mut program = assemble(&src)?;
    program.add_data(lay.input, &img.to_words());
    Ok(KernelInstance::new(
        KernelKind::Smooth,
        program,
        lay.out,
        reference(img),
        lay.min_dmem,
        lay.w,
        lay.h,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::check_kernel;
    use crate::KernelKind;

    #[test]
    fn matches_reference() {
        check_kernel(KernelKind::Smooth, 8, 16, 16);
        check_kernel(KernelKind::Smooth, 9, 20, 10);
    }

    #[test]
    fn smoothing_reduces_variance() {
        let img = GrayImage::synthetic(10, 16, 16);
        let out = reference(&img);
        let interior: Vec<f64> = (1..15)
            .flat_map(|y| (1..15).map(move |x| (x, y)))
            .map(|(x, y)| f64::from(img.at(x, y)))
            .collect();
        let smoothed: Vec<f64> = (1..15usize)
            .flat_map(|y| (1..15usize).map(move |x| (x, y)))
            .map(|(x, y)| f64::from(out[y * 16 + x]))
            .collect();
        let var = |v: &[f64]| {
            let m = v.iter().sum::<f64>() / v.len() as f64;
            v.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / v.len() as f64
        };
        assert!(var(&smoothed) < var(&interior));
    }

    #[test]
    fn constant_image_unchanged_interior() {
        let img = GrayImage::from_pixels(8, 8, vec![90; 64]);
        let out = reference(&img);
        for y in 1..7 {
            for x in 1..7 {
                assert_eq!(out[y * 8 + x], 90);
            }
        }
    }
}
