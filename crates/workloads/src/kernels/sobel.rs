//! 3×3 Sobel gradient magnitude (`|Gx| + |Gy|`, clamped to 255).

use nvp_isa::asm::assemble;
use nvp_isa::Program;

use super::{abs_trick, Layout};
use crate::{GrayImage, KernelInstance, KernelKind, WorkloadError};

/// Emits the shared Sobel-gradient program. With `threshold == None` the
/// clamped magnitude is stored (sobel); with `Some(t)` the output is a
/// binary edge map (`mag > t ? 255 : 0`, the susan.edges proxy).
pub(super) fn gradient_program(
    lay: &Layout,
    threshold: Option<u16>,
) -> Result<Program, WorkloadError> {
    let epilogue = match threshold {
        None => "\
    li   r8, 255
    ble  r5, r8, store
    mov  r5, r8
store:
    sw   r5, 0(r9)"
            .to_owned(),
        Some(t) => format!(
            "\
    li   r6, 0
    li   r8, {t}
    ble  r5, r8, store
    li   r6, 255
store:
    sw   r6, 0(r9)"
        ),
    };
    let src = format!(
        r"
.equ W, {w}
.equ H, {h}
.equ IN, {inp}
.equ OUT, {out}
    li   r1, 1              ; y
yloop:
    li   r4, W
    mul  r3, r1, r4
    addi r9, r3, OUT+1      ; output pointer
    addi r3, r3, IN+1       ; centre pointer
    li   r2, 1              ; x
xloop:
    ; gx = (c + 2f + i) - (a + 2d + g)
    lw   r5, 0-W+1(r3)      ; c
    lw   r6, 1(r3)          ; f
    add  r5, r5, r6
    add  r5, r5, r6
    lw   r6, W+1(r3)        ; i
    add  r5, r5, r6
    lw   r6, 0-W-1(r3)      ; a
    sub  r5, r5, r6
    lw   r7, 0-1(r3)        ; d
    sub  r5, r5, r7
    sub  r5, r5, r7
    lw   r7, W-1(r3)        ; g
    sub  r5, r5, r7
    srai r8, r5, 15         ; |gx|
    xor  r5, r5, r8
    sub  r5, r5, r8
    ; gy = (g + 2h + i) - (a + 2b + c)
    lw   r10, W-1(r3)       ; g
    lw   r11, W(r3)         ; h
    add  r10, r10, r11
    add  r10, r10, r11
    lw   r11, W+1(r3)       ; i
    add  r10, r10, r11
    lw   r11, 0-W-1(r3)     ; a
    sub  r10, r10, r11
    lw   r11, 0-W(r3)       ; b
    sub  r10, r10, r11
    sub  r10, r10, r11
    lw   r11, 0-W+1(r3)     ; c
    sub  r10, r10, r11
    srai r8, r10, 15        ; |gy|
    xor  r10, r10, r8
    sub  r10, r10, r8
    add  r5, r5, r10        ; magnitude
{epilogue}
    addi r3, r3, 1
    addi r9, r9, 1
    addi r2, r2, 1
    li   r8, W-1
    bne  r2, r8, xloop
    addi r1, r1, 1
    li   r8, H-1
    bne  r1, r8, yloop
    halt
",
        w = lay.w,
        h = lay.h,
        inp = lay.input,
        out = lay.out,
    );
    Ok(assemble(&src)?)
}

/// Raw gradient magnitude at an interior pixel, mirroring the assembly.
pub(super) fn gradient_mag(img: &GrayImage, x: usize, y: usize) -> i16 {
    let p = |dx: isize, dy: isize| {
        i16::from(img.at((x as isize + dx) as usize, (y as isize + dy) as usize))
    };
    let gx = (p(1, -1) + 2 * p(1, 0) + p(1, 1)) - (p(-1, -1) + 2 * p(-1, 0) + p(-1, 1));
    let gy = (p(-1, 1) + 2 * p(0, 1) + p(1, 1)) - (p(-1, -1) + 2 * p(0, -1) + p(1, -1));
    abs_trick(gx).wrapping_add(abs_trick(gy))
}

fn reference(img: &GrayImage) -> Vec<u16> {
    let (w, h) = (img.width(), img.height());
    let mut out = vec![0u16; w * h];
    for y in 1..h - 1 {
        for x in 1..w - 1 {
            let mag = gradient_mag(img, x, y);
            out[y * w + x] = (mag as u16).min(255);
        }
    }
    out
}

pub(crate) fn build(img: &GrayImage) -> Result<KernelInstance, WorkloadError> {
    let lay = Layout::for_image(img, img.width() * img.height(), 0);
    let mut program = gradient_program(&lay, None)?;
    program.add_data(lay.input, &img.to_words());
    Ok(KernelInstance::new(
        KernelKind::Sobel,
        program,
        lay.out,
        reference(img),
        lay.min_dmem,
        lay.w,
        lay.h,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::check_kernel;
    use crate::KernelKind;

    #[test]
    fn matches_reference_16x16() {
        check_kernel(KernelKind::Sobel, 1, 16, 16);
    }

    #[test]
    fn matches_reference_non_square() {
        check_kernel(KernelKind::Sobel, 2, 24, 12);
    }

    #[test]
    fn borders_are_zero() {
        let img = GrayImage::synthetic(3, 16, 16);
        let r = reference(&img);
        for x in 0..16 {
            assert_eq!(r[x], 0);
            assert_eq!(r[15 * 16 + x], 0);
        }
        for y in 0..16 {
            assert_eq!(r[y * 16], 0);
            assert_eq!(r[y * 16 + 15], 0);
        }
    }

    #[test]
    fn flat_image_has_zero_gradient() {
        let img = GrayImage::from_pixels(8, 8, vec![100; 64]);
        assert!(reference(&img).iter().all(|&v| v == 0));
    }

    #[test]
    fn step_edge_detected() {
        let mut pixels = vec![0u8; 64];
        for y in 0..8 {
            for x in 4..8 {
                pixels[y * 8 + x] = 200;
            }
        }
        let img = GrayImage::from_pixels(8, 8, pixels);
        let r = reference(&img);
        // Column 3/4 boundary produces strong responses.
        assert!(r[3 * 8 + 4] > 200);
    }
}
