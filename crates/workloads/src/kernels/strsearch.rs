//! Pattern matching: count (overlapping) occurrences of a 4-word needle
//! in the frame, scanning every window position.

use nvp_isa::asm::assemble;

use super::Layout;
use crate::{GrayImage, KernelInstance, KernelKind, WorkloadError};

const PAT_LEN: usize = 4;
/// The needle is lifted from this offset of the frame itself, so at
/// least one match always exists.
const PAT_OFFSET: usize = 5;

fn pattern(img: &GrayImage) -> Vec<u16> {
    img.pixels()[PAT_OFFSET..PAT_OFFSET + PAT_LEN].iter().map(|&p| u16::from(p)).collect()
}

fn reference(img: &GrayImage) -> Vec<u16> {
    let data = img.to_words();
    let pat = pattern(img);
    let count = data.windows(PAT_LEN).filter(|window| *window == pat.as_slice()).count() as u16;
    vec![count]
}

pub(crate) fn build(img: &GrayImage) -> Result<KernelInstance, WorkloadError> {
    assert!(img.width() * img.height() >= PAT_OFFSET + PAT_LEN, "frame too small for strsearch");
    let lay = Layout::for_image(img, 1, PAT_LEN);
    let pat_addr = lay.scr;
    let src = format!(
        r"
.equ N, {n}
.equ IN, {inp}
.equ OUT, {out}
.equ PAT, {pat}
    li   r1, 0              ; window index
    li   r2, 0              ; match count
loop:
    li   r3, IN
    add  r3, r3, r1
    li   r4, PAT
    lw   r5, 0(r3)
    lw   r6, 0(r4)
    bne  r5, r6, next
    lw   r5, 1(r3)
    lw   r6, 1(r4)
    bne  r5, r6, next
    lw   r5, 2(r3)
    lw   r6, 2(r4)
    bne  r5, r6, next
    lw   r5, 3(r3)
    lw   r6, 3(r4)
    bne  r5, r6, next
    addi r2, r2, 1
next:
    addi r1, r1, 1
    li   r7, N-3
    bne  r1, r7, loop
    li   r3, OUT
    sw   r2, 0(r3)
    halt
",
        n = lay.n,
        inp = lay.input,
        out = lay.out,
        pat = pat_addr,
    );
    let mut program = assemble(&src)?;
    program.add_data(lay.input, &img.to_words());
    program.add_data(pat_addr, &pattern(img));
    Ok(KernelInstance::new(
        KernelKind::StrSearch,
        program,
        lay.out,
        reference(img),
        lay.min_dmem,
        lay.w,
        lay.h,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernels::check_kernel;
    use crate::KernelKind;

    #[test]
    fn matches_reference() {
        check_kernel(KernelKind::StrSearch, 22, 16, 16);
        check_kernel(KernelKind::StrSearch, 23, 8, 8);
    }

    #[test]
    fn at_least_one_match_by_construction() {
        let img = GrayImage::synthetic(24, 12, 12);
        assert!(reference(&img)[0] >= 1);
    }

    #[test]
    fn counts_overlapping_matches() {
        // All-zero frame: the pattern (0,0,0,0) matches every window.
        let img = GrayImage::from_pixels(4, 3, vec![0; 12]);
        assert_eq!(reference(&img)[0], 9, "12 - 4 + 1 windows");
    }
}
