//! # nvp-workloads — IoT post-sensing kernels for the NV16 MCU
//!
//! The DATE'17 survey motivates NVPs with locally computed post-sensing
//! analytics: image and pattern-processing kernels of the MiBench class
//! (sobel/susan-style filters, JPEG-style transforms, CRC, search). This
//! crate provides those workloads as **real NV16 assembly programs**
//! (assembled by `nvp-isa`, executed by `nvp-sim`), each paired with an
//! exact Rust reference implementation so functional correctness under
//! intermittent execution can be verified bit-for-bit.
//!
//! * [`GrayImage`] — seeded synthetic sensor frames,
//! * [`KernelKind`] / [`KernelInstance`] — the kernel suite: build a
//!   program for a frame, run it, compare against the reference,
//! * [`metrics`] — MSE / PSNR quality metrics used by the approximation
//!   experiments.
//!
//! ## Example
//!
//! ```
//! use nvp_workloads::{GrayImage, KernelKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let frame = GrayImage::synthetic(7, 16, 16);
//! let kernel = KernelKind::Sobel.build(&frame)?;
//! let output = kernel.run_to_completion()?;
//! assert_eq!(output, kernel.reference());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fuzz;
mod image;
mod kernel;
mod kernels;
pub mod metrics;

pub use image::GrayImage;
pub use kernel::{KernelInstance, KernelKind, WorkloadError};

/// Data-memory word address where kernel input frames are loaded.
pub const INPUT_ADDR: u16 = 0x0100;
