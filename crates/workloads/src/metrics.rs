//! Output-quality metrics (MSE, PSNR).
//!
//! The NVP approximation literature reports quality as mean squared error
//! and peak signal-to-noise ratio against a full-precision baseline;
//! ≥20 dB is conventionally usable, ≥40 dB near-indistinguishable.

/// Mean squared error between two equal-length word sequences.
///
/// # Panics
///
/// Panics if lengths differ or both are empty.
///
/// # Example
///
/// ```
/// let mse = nvp_workloads::metrics::mse(&[0, 0], &[3, 4]);
/// assert!((mse - 12.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn mse(a: &[u16], b: &[u16]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty inputs");
    let sum: f64 = a
        .iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - f64::from(y);
            d * d
        })
        .sum();
    sum / a.len() as f64
}

/// Peak signal-to-noise ratio in dB, for signals with peak value `peak`
/// (255 for 8-bit imagery). Identical sequences yield `f64::INFINITY`.
///
/// # Panics
///
/// Panics if lengths differ, inputs are empty, or `peak <= 0`.
///
/// # Example
///
/// ```
/// let db = nvp_workloads::metrics::psnr(&[10, 20], &[10, 20], 255.0);
/// assert!(db.is_infinite());
/// let db = nvp_workloads::metrics::psnr(&[0; 100], &[5; 100], 255.0);
/// assert!(db > 30.0 && db < 40.0);
/// ```
#[must_use]
pub fn psnr(a: &[u16], b: &[u16], peak: f64) -> f64 {
    assert!(peak > 0.0, "peak must be positive");
    let e = mse(a, b);
    // Exact zero is the identical-input sentinel (PSNR = ∞), not a
    // tolerance question. nvp-lint: allow(float-eq)
    if e == 0.0 {
        f64::INFINITY
    } else {
        10.0 * (peak * peak / e).log10()
    }
}

/// Fraction of exactly matching elements.
///
/// # Panics
///
/// Panics if lengths differ or both are empty.
#[must_use]
pub fn exact_match_fraction(a: &[u16], b: &[u16]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch");
    assert!(!a.is_empty(), "empty inputs");
    a.iter().zip(b).filter(|(x, y)| x == y).count() as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_basics() {
        assert_eq!(mse(&[1, 2, 3], &[1, 2, 3]), 0.0);
        assert_eq!(mse(&[0], &[10]), 100.0);
    }

    #[test]
    fn psnr_ordering() {
        let base = vec![100u16; 64];
        let slightly_off: Vec<u16> = base.iter().map(|&v| v + 1).collect();
        let very_off: Vec<u16> = base.iter().map(|&v| v + 50).collect();
        let good = psnr(&base, &slightly_off, 255.0);
        let bad = psnr(&base, &very_off, 255.0);
        assert!(good > 40.0, "{good}");
        assert!(bad < good);
    }

    #[test]
    fn match_fraction() {
        assert_eq!(exact_match_fraction(&[1, 2, 3, 4], &[1, 0, 3, 0]), 0.5);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        let _ = mse(&[1], &[1, 2]);
    }
}
