//! Toolchain closure over the real kernel suite: every generated kernel
//! program disassembles to text that re-assembles to the identical
//! binary, and its data segments survive the journey.

use nvp_isa::asm::assemble;
use nvp_workloads::{GrayImage, KernelKind};

#[test]
fn every_kernel_disassembles_and_reassembles() {
    let frame = GrayImage::synthetic(99, 16, 16);
    for kind in KernelKind::ALL {
        let inst = kind.build(&frame).expect("kernel builds");
        // Strip the address column the disassembler prefixes each line
        // with ("   12: addi r1, r1, 1" → "addi r1, r1, 1").
        let text: String = inst
            .program()
            .disassemble()
            .lines()
            .map(|line| {
                let (_, body) = line.split_once(':').expect("addr prefix");
                format!("{}\n", body.trim())
            })
            .collect();
        let rebuilt = assemble(&text)
            .unwrap_or_else(|e| panic!("{kind}: disassembly does not reassemble: {e}"));
        assert_eq!(rebuilt.code(), inst.program().code(), "{kind}: reassembled code differs");
    }
}

#[test]
fn every_kernel_renders_and_reassembles_byte_identically() {
    // The strong closure property: `Program::render_asm` emits source
    // that reassembles to a structurally identical image — code words,
    // data segments, entry point, AND symbol table. Two frame seeds so
    // data-dependent segment contents are exercised too.
    for seed in [7u64, 99] {
        let frame = GrayImage::synthetic(seed, 16, 16);
        for kind in KernelKind::ALL {
            let inst = kind.build(&frame).expect("kernel builds");
            let src = inst.program().render_asm().expect("kernel image decodes");
            let rebuilt = assemble(&src)
                .unwrap_or_else(|e| panic!("{kind}: rendered source does not assemble: {e}"));
            assert_eq!(
                &rebuilt,
                inst.program(),
                "{kind} (seed {seed}): reassembled image differs from the original"
            );
        }
    }
}

#[test]
fn kernel_programs_are_nontrivial() {
    // Guard against degenerate codegen: each kernel is a real program
    // with loops (backward branches) and memory traffic.
    let frame = GrayImage::synthetic(99, 16, 16);
    for kind in KernelKind::ALL {
        let inst = kind.build(&frame).expect("kernel builds");
        let decoded: Vec<nvp_isa::Inst> =
            inst.program().code().iter().map(|&w| nvp_isa::Inst::decode(w).unwrap()).collect();
        assert!(decoded.len() >= 10, "{kind}: only {} instructions", decoded.len());
        let has_backward_edge = decoded.iter().enumerate().any(|(pc, i)| match i {
            nvp_isa::Inst::Beq { offset, .. }
            | nvp_isa::Inst::Bne { offset, .. }
            | nvp_isa::Inst::Blt { offset, .. }
            | nvp_isa::Inst::Bge { offset, .. }
            | nvp_isa::Inst::Bltu { offset, .. }
            | nvp_isa::Inst::Bgeu { offset, .. } => *offset < 0,
            nvp_isa::Inst::Jal { target, .. } => (*target as usize) <= pc,
            _ => false,
        });
        assert!(has_backward_edge, "{kind}: no loop found");
        assert!(decoded.iter().any(nvp_isa::Inst::is_mem), "{kind}: no memory traffic");
        assert!(decoded.iter().any(|i| matches!(i, nvp_isa::Inst::Halt)), "{kind}: no halt");
    }
}
