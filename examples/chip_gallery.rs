//! Prints the published-chip gallery (table T1) and the STT-RAM
//! retention/write-current trade-off curves behind adaptive retention.
//!
//! Run with: `cargo run --release --example chip_gallery`

use nvp::device::sttram::SttModel;
use nvp::device::{published_chips, EnduranceMeter, NvmTechnology};

fn main() {
    println!("== published NVP silicon ==");
    println!("{:<48} {:>9} {:>11} {:>11} {:>10}", "chip", "tech", "backup", "wake-up", "state");
    for chip in published_chips() {
        println!(
            "{:<48} {:>9} {:>9.1}us {:>9.2}us {:>7}b",
            chip.name,
            chip.tech.to_string(),
            chip.backup_time_s * 1e6,
            chip.restore_time_s * 1e6,
            chip.state_bits
        );
    }

    println!("\n== endurance at wearable backup duty (25 backups/s) ==");
    for tech in NvmTechnology::ALL {
        let meter = EnduranceMeter::new(tech.params());
        let life = meter.lifetime_years(25.0);
        let verdict = if life >= 10.0 { "ok for a decade" } else { "wears out!" };
        println!("{:>9}: {:>12.1e} years  ({verdict})", tech.to_string(), life);
    }

    println!("\n== STT-RAM write current vs pulse width (by retention) ==");
    let model = SttModel::default();
    let retentions: [(&str, f64); 4] =
        [("10 ms", 0.01), ("1 s", 1.0), ("1 min", 60.0), ("1 day", 86_400.0)];
    print!("{:>10}", "pulse(ns)");
    for (name, _) in retentions {
        print!(" {name:>10}");
    }
    println!();
    let series: Vec<Vec<(f64, f64)>> =
        retentions.iter().map(|&(_, ret)| model.current_vs_pulse(ret, 8)).collect();
    for i in 0..8 {
        print!("{:>10.2}", series[0][i].0 * 1e9);
        for s in &series {
            print!(" {:>8.1}uA", s[i].1 * 1e6);
        }
        println!();
    }

    let saving = model.retention_energy_saving(86_400.0, 0.01);
    println!(
        "\nrelaxing retention 1 day -> 10 ms saves {:.0} % of write energy \
         (published: ~77 %)",
        saving * 100.0
    );
}
