//! Design-space exploration: how backup margin and storage capacitance
//! shape forward progress — the knobs an NVP system designer actually
//! turns (experiments F5/F10 in interactive form).
//!
//! Run with: `cargo run --release --example policy_explorer`

use nvp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frame = GrayImage::synthetic(7, 32, 32);
    let kernel = KernelKind::Sobel.build(&frame)?;
    let trace = harvester::wrist_watch(1, 10.0);
    let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);

    println!("== backup margin sweep (reserve = margin x backup energy) ==");
    println!("{:>8} {:>12} {:>9} {:>10}", "margin", "fp", "backups", "rollbacks");
    for margin in [1.0, 1.2, 1.5, 2.0, 3.0, 5.0] {
        let mut cfg = SystemConfig::default();
        cfg.dmem_words = cfg.dmem_words.max(kernel.min_dmem_words());
        let mut sys = IntermittentSystem::new(
            kernel.program(),
            cfg,
            backup,
            BackupPolicy::OnDemand { margin },
        )?;
        let r = sys.run(&trace)?;
        println!("{margin:>8.1} {:>12} {:>9} {:>10}", r.forward_progress(), r.backups, r.rollbacks);
    }

    println!("\n== storage capacitance sweep (demand policy, margin 1.5) ==");
    println!("{:>10} {:>12} {:>10}", "cap (uF)", "fp", "on-time %");
    for cap in [0.1e-6, 0.22e-6, 0.47e-6, 1e-6, 2.2e-6, 10e-6, 100e-6] {
        let mut cfg = SystemConfig::default().with_capacitance(cap);
        cfg.dmem_words = cfg.dmem_words.max(kernel.min_dmem_words());
        let mut sys =
            IntermittentSystem::new(kernel.program(), cfg, backup, BackupPolicy::demand())?;
        let r = sys.run(&trace)?;
        println!(
            "{:>10.2} {:>12} {:>10.1}",
            cap * 1e6,
            r.forward_progress(),
            r.on_fraction() * 100.0
        );
    }

    println!("\ntakeaway: margins below ~1.5x lose checkpoints; capacitance");
    println!("only needs to cover restore + backup + a work quantum.");
    Ok(())
}
