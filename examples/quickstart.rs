//! Quickstart: assemble an NV16 program, power an NVP from a synthetic
//! wrist-harvester trace, and read the forward-progress report.
//!
//! Run with: `cargo run --release --example quickstart`

use nvp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A tiny continuous workload: keep a persistent counter in NVM.
    let program = assemble(
        r"
        start:
            lw   r1, 0(r0)      ; counter lives in nonvolatile memory
            addi r1, r1, 1
            sw   r1, 0(r0)
            j    start
        ",
    )?;

    // A hardware NVP: distributed FeRAM NV flip-flops, demand backup.
    let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
    let mut nvp =
        IntermittentSystem::new(&program, SystemConfig::default(), backup, BackupPolicy::demand())?;

    // Ten seconds of turbulent wearable power (≈20-40 µW average,
    // thousands of power emergencies).
    let trace = harvester::wrist_watch(1, 10.0);
    let stats = OutageStats::analyze(&trace, 33e-6);
    println!(
        "trace: {:.1} µW average, {:.0} emergencies per 10 s",
        trace.average_w() * 1e6,
        stats.emergencies_per_10s(trace.duration_s())
    );

    let report = nvp.run(&trace)?;
    println!("forward progress : {} instructions committed", report.forward_progress());
    println!("backups/restores : {} / {}", report.backups, report.restores);
    println!("rollbacks        : {} (demand policy loses nothing)", report.rollbacks);
    println!("system-on time   : {:.1} %", report.on_fraction() * 100.0);
    println!("backup overhead  : {:.1} % of income energy", report.backup_energy_share() * 100.0);
    println!(
        "persistent counter after {} power cycles: {}",
        report.restores,
        nvp.machine().read_word(0).unwrap_or(0)
    );
    Ok(())
}
