//! Regenerates the entire reconstructed evaluation (all tables and
//! figures) into `results/`, printing the Markdown as it goes.
//!
//! Run with: `cargo run --release --example repro_all [-- --quick]`

use std::path::Path;

use nvp::experiments::{registry, run_all, ExpConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let quick = std::env::args().any(|a| a == "--quick");
    let cfg = if quick { ExpConfig::quick() } else { ExpConfig::default() };
    eprintln!("regenerating {} registered experiments ...", registry().len());
    let artifacts = run_all(&cfg, Path::new("results"))?;
    for table in &artifacts.tables {
        println!("{}", table.to_markdown());
    }
    eprintln!("wrote {} artifact files to results/", artifacts.files.len());
    Ok(())
}
