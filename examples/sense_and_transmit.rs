//! A classic sense-and-transmit node, written with the typed
//! [`ProgramBuilder`] instead of text assembly: sample a sensor port,
//! keep a smoothed running average in NVM, and emit a "radio packet"
//! (an `out` port write) whenever the reading crosses a threshold.
//! The system-level energy split is then compared against the T2
//! application model.
//!
//! Run with: `cargo run --release --example sense_and_transmit`

use nvp::isa::builder::ProgramBuilder;
use nvp::isa::Reg;
use nvp::platform::AppProfile;
use nvp::prelude::*;

fn build_app(threshold: u16) -> Result<nvp::isa::Program, Box<dyn std::error::Error>> {
    let mut b = ProgramBuilder::new();
    let top = b.new_label();
    let no_alert = b.new_label();
    b.bind(top)?;
    // r1 = new sensor sample (port 0).
    b.inp(Reg::R1, 0);
    // r2 = smoothed = (3*old + new) / 4, persisted at dmem[0].
    b.lw(Reg::R2, Reg::R0, 0);
    b.mov(Reg::R3, Reg::R2);
    b.slli(Reg::R3, Reg::R3, 1);
    b.add(Reg::R3, Reg::R3, Reg::R2); // 3*old
    b.add(Reg::R3, Reg::R3, Reg::R1);
    b.srli(Reg::R3, Reg::R3, 2);
    b.sw(Reg::R3, Reg::R0, 0);
    // Count samples at dmem[1].
    b.lw(Reg::R4, Reg::R0, 1);
    b.addi(Reg::R4, Reg::R4, 1);
    b.sw(Reg::R4, Reg::R0, 1);
    // Transmit when the smoothed value exceeds the threshold.
    b.li(Reg::R5, threshold);
    b.sltu(Reg::R6, Reg::R5, Reg::R3); // r6 = threshold < smoothed
    b.beqz(Reg::R6, no_alert);
    b.out(1, Reg::R3); // "radio packet"
    b.bind(no_alert)?;
    b.jmp(top);
    Ok(b.build()?)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let program = build_app(90)?;
    let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
    let mut sys =
        IntermittentSystem::new(&program, SystemConfig::default(), backup, BackupPolicy::demand())?;
    // A slowly rising "temperature" on the sensor port, body-heat power.
    sys.run(&harvester::thermal_body(1, 2.0))?;
    // Change the latched sensor value between windows.
    for (i, window) in [60u16, 80, 95, 120, 100, 70].into_iter().enumerate() {
        sys.set_input(0, window);
        sys.run(&harvester::thermal_body(2 + i as u64, 2.0))?;
    }
    let report = *sys.report();
    let samples = sys.machine().read_word(1).unwrap_or(0);
    let packets = sys.machine().out_log().iter().filter(|(port, _)| *port == 1).count();

    println!(
        "ran {:.0} s on body heat: {} samples, {} alert packets, {} power cycles",
        report.duration_s, samples, packets, report.restores
    );

    // System-level energy: core energy measured, radio energy modelled.
    let radio_j = packets as f64 * AppProfile::temperature_sensing().radio_energy_j();
    let core_j = (report.energy.compute + report.energy.backup + report.energy.restore).get();
    let share = core_j / (core_j + radio_j).max(1e-18);
    println!(
        "energy: core {:.1} µJ vs radio {:.1} µJ → compute share {:.1}% \
         (T2 temperature-sensing model: 2.4%)",
        core_j * 1e6,
        radio_j * 1e6,
        share * 100.0
    );
    Ok(())
}
