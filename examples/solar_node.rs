//! An indoor-solar sensing node with income-adaptive clock scaling —
//! the F11 scenario interactively: a fixed 1 MHz core spills the solar
//! surplus; the adaptive policy converts it into frames.
//!
//! Run with: `cargo run --release --example solar_node`

use nvp::prelude::*;

fn run(label: &str, program: &nvp::isa::Program, cfg: SystemConfig, trace: &PowerTrace) {
    let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
    let mut sys = IntermittentSystem::new(program, cfg, backup, BackupPolicy::demand())
        .expect("platform builds");
    let r = sys.run(trace).expect("runs");
    println!(
        "{label:<18} fp {:>9}  frames {:>4}  on {:>5.1}%  spilled {:>5.1}% of income",
        r.forward_progress(),
        r.tasks_completed,
        r.on_fraction() * 100.0,
        100.0 * r.energy.storage_wasted.get() / r.energy.converted.get().max(1e-18)
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frame = GrayImage::synthetic(7, 32, 32);
    let kernel = KernelKind::Sobel.build(&frame)?;
    let mut base = SystemConfig::default();
    base.dmem_words = base.dmem_words.max(kernel.min_dmem_words());

    let trace = harvester::solar_indoor(1, 10.0);
    println!(
        "indoor solar: {:.0} µW average vs {:.0} µW core draw at 1 MHz\n",
        trace.average_w() * 1e6,
        210.0
    );

    for mult in [1u32, 2, 4, 8] {
        let mut cfg = base;
        cfg.clock_hz = 1e6 * f64::from(mult);
        run(&format!("fixed {mult} MHz"), kernel.program(), cfg, &trace);
    }
    run(
        "adaptive 1-8 MHz",
        kernel.program(),
        base.with_clock_policy(ClockPolicy::adaptive()),
        &trace,
    );

    println!("\nthe adaptive core tracks the income: full speed under good light,");
    println!("base speed through shadows — no spill, no backup churn.");
    Ok(())
}
