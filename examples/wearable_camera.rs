//! The survey's motivating scenario: a battery-free camera node that must
//! process frames (Sobel edge extraction) locally on harvested wrist
//! power. Compares the NVP against the conventional charge-then-compute
//! platform and verifies that the NVP's output — produced across dozens
//! of power failures — is bit-identical to the uninterrupted reference.
//!
//! Run with: `cargo run --release --example wearable_camera`

use nvp::platform::measure_task;
use nvp::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let frame = GrayImage::synthetic(7, 32, 32);
    let kernel = KernelKind::Sobel.build(&frame)?;
    println!(
        "frame: 32x32, kernel: {}, reference output: {} words",
        kernel.kind(),
        kernel.reference().len()
    );

    let mut sys_cfg = SystemConfig::default();
    sys_cfg.dmem_words = sys_cfg.dmem_words.max(kernel.min_dmem_words());
    let cost = measure_task(kernel.program(), &sys_cfg, 100_000_000)?;
    println!(
        "one frame costs {} instructions, {:.1} µJ, {:.1} ms at 1 MHz\n",
        cost.instructions,
        cost.energy_j * 1e6,
        cost.time_s(1e6) * 1e3
    );

    let trace = harvester::wrist_watch(2, 10.0);

    // --- Hardware NVP ---
    let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
    let mut nvp =
        IntermittentSystem::new(kernel.program(), sys_cfg, backup, BackupPolicy::demand())?;
    let nr = nvp.run(&trace)?;
    println!(
        "NVP : {} frames, fp {}, {} backups, {} rollbacks",
        nr.tasks_completed,
        nr.forward_progress(),
        nr.backups,
        nr.rollbacks
    );

    // The frame completed across many power failures must still be exact.
    if nr.tasks_completed > 0 {
        let output = kernel.output_of(nvp.machine());
        assert_eq!(output, kernel.reference(), "intermittent execution corrupted the output!");
        println!("      output verified bit-exact against the reference");
    }

    // --- Wait-then-compute baseline ---
    let mut wcfg = WaitComputeConfig::default().sized_for(&cost, 1.3);
    wcfg.dmem_words = wcfg.dmem_words.max(kernel.min_dmem_words());
    let mut wait = WaitComputeSystem::new(kernel.program(), wcfg)?;
    let wr = wait.run(&trace)?;
    println!(
        "wait: {} frames, fp {}, {} mid-frame losses",
        wr.tasks_completed,
        wr.forward_progress(),
        wr.rollbacks
    );

    let ratio = nr.forward_progress() as f64 / wr.forward_progress().max(1) as f64;
    println!("\nNVP forward-progress advantage: {ratio:.2}x (published band: 2.2-5x)");
    Ok(())
}
