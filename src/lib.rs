//! # nvp — nonvolatile processors for energy-harvesting IoT, in simulation
//!
//! A comprehensive Rust framework reproducing the evaluation landscape of
//! the DATE 2017 survey *"Nonvolatile processors: Why is it trending?"*
//! (Su, Ma, Li, Wu, Liu, Narayanan). See `DESIGN.md` for the full system
//! inventory — including the note that the survey's exact figures were
//! unavailable and the evaluation is a documented reconstruction.
//!
//! The workspace builds everything from scratch:
//!
//! * [`isa`] — the NV16 MCU instruction set, assembler, disassembler,
//! * [`sim`] — a cycle/energy-annotated functional simulator,
//! * [`device`] — NVM technology models (FeRAM/ReRAM/STT-MRAM/PCM),
//!   retention physics, NV flip-flop banks, endurance, chip gallery,
//! * [`energy`] — harvester traces, outage statistics, rectifier,
//!   storage capacitor,
//! * [`platform`] — the NVP architecture: backup/restore models and
//!   policies, the intermittent-execution system simulator, and the
//!   wait-compute / software-checkpointing baselines,
//! * [`workloads`] — MiBench-class image/pattern kernels as real NV16
//!   assembly with bit-exact Rust references,
//! * [`experiments`] — the harness regenerating every table and figure.
//!
//! ## Quickstart
//!
//! ```
//! use nvp::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // 1. Write a program for the NV16 MCU.
//! let program = assemble(
//!     "start: addi r1, r1, 1\n sw r1, 0(r0)\n j start",
//! )?;
//!
//! // 2. Pick an NVP: distributed FeRAM backup, demand policy.
//! let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
//! let mut nvp = IntermittentSystem::new(
//!     &program, SystemConfig::default(), backup, BackupPolicy::demand())?;
//!
//! // 3. Power it from a synthetic wrist-harvester trace and run.
//! let trace = harvester::wrist_watch(1, 2.0);
//! let report = nvp.run(&trace)?;
//! assert!(report.forward_progress() > 0);
//! println!("committed {} instructions over {} backups",
//!          report.forward_progress(), report.backups);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use nvp_core as platform;
pub use nvp_device as device;
pub use nvp_energy as energy;
pub use nvp_experiments as experiments;
pub use nvp_isa as isa;
pub use nvp_sim as sim;
pub use nvp_workloads as workloads;

/// The most commonly used items, re-exported flat.
pub mod prelude {
    pub use nvp_core::{
        measure_task, BackupModel, BackupPolicy, ClockPolicy, FaultPlan, IntermittentSystem,
        RunReport, SystemConfig, Thresholds, WaitComputeConfig, WaitComputeSystem,
    };
    pub use nvp_device::{NvffBank, NvmTechnology, RelaxPolicy, RetentionShaper};
    pub use nvp_energy::{harvester, Capacitor, OutageStats, PowerTrace, Rectifier};
    pub use nvp_isa::asm::assemble;
    pub use nvp_isa::{Inst, Program, Reg};
    pub use nvp_sim::{Machine, SimError};
    pub use nvp_workloads::{GrayImage, KernelInstance, KernelKind};
}
