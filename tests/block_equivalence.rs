//! Step-vs-block equivalence over every registry workload kernel.
//!
//! The fused basic-block engine (`Machine::run_blocks`) must be
//! observationally identical to per-instruction dispatch: same final
//! registers, same memory digest, same retired-instruction count, and
//! bit-identical energy (`f64::to_bits` — fused execution must preserve
//! the exact per-instruction f64 accumulation order). Checked both for
//! one uninterrupted run and under randomized chunked budgets, which
//! exercises mid-block budget exhaustion, checkpoint early-returns, and
//! re-entry at non-leader program counters.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use nvp_sim::Machine;
use nvp_workloads::{GrayImage, KernelKind};

/// Per-kernel instruction budget: enough to finish the small frame or
/// to sample deep into the steady-state loop of kernels that don't.
const BUDGET: u64 = 300_000;

/// FNV-1a over every architectural observable — registers, pc, halt
/// flag, data memory, and the output log (golden-digest style: one
/// number summarizing the whole machine state).
fn state_digest(m: &Machine) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in m.pc().to_le_bytes() {
        eat(b);
    }
    eat(u8::from(m.halted()));
    for r in m.snapshot().regs {
        for b in r.to_le_bytes() {
            eat(b);
        }
    }
    for &w in m.dmem() {
        for b in w.to_le_bytes() {
            eat(b);
        }
    }
    for &(port, value) in m.out_log() {
        eat(port);
        for b in value.to_le_bytes() {
            eat(b);
        }
    }
    h
}

fn assert_same_state(step: &Machine, block: &Machine, ctx: &str) {
    assert_eq!(step.snapshot(), block.snapshot(), "{ctx}: architectural state diverged");
    assert_eq!(step.dmem(), block.dmem(), "{ctx}: data memory diverged");
    assert_eq!(step.out_log(), block.out_log(), "{ctx}: output log diverged");
    assert_eq!(state_digest(step), state_digest(block), "{ctx}: state digest diverged");
    let (cs, cb) = (step.counters(), block.counters());
    assert_eq!(cs.instructions, cb.instructions, "{ctx}: retired counts diverged");
    assert_eq!(cs.cycles, cb.cycles, "{ctx}: cycle counts diverged");
    assert_eq!(cs.class_counts, cb.class_counts, "{ctx}: class counts diverged");
    assert_eq!(cs.branches_taken, cb.branches_taken, "{ctx}: branch counts diverged");
    assert_eq!(
        cs.energy_j.to_bits(),
        cb.energy_j.to_bits(),
        "{ctx}: energy not bit-identical ({} vs {})",
        cs.energy_j,
        cb.energy_j
    );
}

/// Advances `m` with `run_blocks` until it has retired `target`
/// instructions in total (or halted) — `run_blocks` legitimately
/// returns early at checkpoint boundaries, so one call per chunk is
/// not guaranteed to consume the whole chunk budget.
fn blocks_to_target(m: &mut Machine, target: u64) {
    while m.counters().instructions < target && !m.halted() {
        let remaining = target - m.counters().instructions;
        let stats = m.run_blocks(remaining).expect("kernel does not fault");
        if stats.executed == 0 && !stats.checkpoint {
            break;
        }
    }
}

/// Same, with per-instruction `step()` dispatch.
fn steps_to_target(m: &mut Machine, target: u64) {
    while m.counters().instructions < target && !m.halted() {
        m.step().expect("kernel does not fault");
    }
}

#[test]
fn all_kernels_match_step_mode_exactly() {
    let frame = GrayImage::synthetic(7, 16, 16);
    for kind in KernelKind::ALL {
        let inst = kind.build(&frame).expect("kernel builds");
        let mut by_step = inst.machine().expect("machine loads");
        let mut by_block = inst.machine().expect("machine loads");
        steps_to_target(&mut by_step, BUDGET);
        blocks_to_target(&mut by_block, BUDGET);
        assert_same_state(&by_step, &by_block, &format!("{kind:?} full run"));
    }
}

#[test]
fn all_kernels_match_step_mode_under_chunked_budgets() {
    let frame = GrayImage::synthetic(7, 16, 16);
    let mut rng = StdRng::seed_from_u64(0x5eed_b10c);
    for kind in KernelKind::ALL {
        let inst = kind.build(&frame).expect("kernel builds");
        let mut by_step = inst.machine().expect("machine loads");
        let mut by_block = inst.machine().expect("machine loads");
        let mut target = 0u64;
        // Ragged chunks land budget boundaries mid-block, so the block
        // engine must fall back to single steps and later re-enter at
        // non-leader pcs — compare after every chunk, not just at the
        // end.
        for round in 0..64 {
            target += 1 + u64::from(rng.next_u32() % 97);
            steps_to_target(&mut by_step, target);
            blocks_to_target(&mut by_block, target);
            assert_same_state(&by_step, &by_block, &format!("{kind:?} chunk {round}"));
            if by_step.halted() {
                break;
            }
        }
    }
}
