//! Execution-tier equivalence over every registry workload kernel.
//!
//! All four execution tiers must be observationally identical: per
//! instruction `step()` dispatch, the fused basic-block engine
//! (`Machine::run_blocks`), the profile-directed superblock tier
//! (`Machine::run_superblocks`), and the SoA lane engine
//! ([`LaneMachine`]) — same final registers, same memory digest, same
//! retired-instruction count, and bit-identical energy
//! (`f64::to_bits` — fused execution must preserve the exact
//! per-instruction f64 accumulation order). Checked both for one
//! uninterrupted run and under randomized chunked budgets, which
//! exercises mid-block budget exhaustion, checkpoint early-returns,
//! re-entry at non-leader program counters, superblock side exits, and
//! the lane tier's scalar fallback.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

use nvp_sim::{CycleModel, EnergyModel, LaneMachine, Machine, MachineImage};
use nvp_workloads::{GrayImage, KernelKind};

/// Per-kernel instruction budget: enough to finish the small frame or
/// to sample deep into the steady-state loop of kernels that don't.
const BUDGET: u64 = 300_000;

/// FNV-1a over every architectural observable — registers, pc, halt
/// flag, data memory, and the output log (golden-digest style: one
/// number summarizing the whole machine state).
fn state_digest(m: &Machine) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut eat = |byte: u8| {
        h ^= u64::from(byte);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    };
    for b in m.pc().to_le_bytes() {
        eat(b);
    }
    eat(u8::from(m.halted()));
    for r in m.snapshot().regs {
        for b in r.to_le_bytes() {
            eat(b);
        }
    }
    for &w in m.dmem() {
        for b in w.to_le_bytes() {
            eat(b);
        }
    }
    for &(port, value) in m.out_log() {
        eat(port);
        for b in value.to_le_bytes() {
            eat(b);
        }
    }
    h
}

fn assert_same_state(step: &Machine, other: &Machine, ctx: &str) {
    assert_eq!(step.snapshot(), other.snapshot(), "{ctx}: architectural state diverged");
    assert_eq!(step.dmem(), other.dmem(), "{ctx}: data memory diverged");
    assert_eq!(step.out_log(), other.out_log(), "{ctx}: output log diverged");
    assert_eq!(state_digest(step), state_digest(other), "{ctx}: state digest diverged");
    let (cs, cb) = (step.counters(), other.counters());
    assert_eq!(cs.instructions, cb.instructions, "{ctx}: retired counts diverged");
    assert_eq!(cs.cycles, cb.cycles, "{ctx}: cycle counts diverged");
    assert_eq!(cs.class_counts, cb.class_counts, "{ctx}: class counts diverged");
    assert_eq!(cs.branches_taken, cb.branches_taken, "{ctx}: branch counts diverged");
    assert_eq!(
        cs.energy_j.to_bits(),
        cb.energy_j.to_bits(),
        "{ctx}: energy not bit-identical ({} vs {})",
        cs.energy_j,
        cb.energy_j
    );
}

/// Advances `m` with `run_blocks` until it has retired `target`
/// instructions in total (or halted) — `run_blocks` legitimately
/// returns early at checkpoint boundaries, so one call per chunk is
/// not guaranteed to consume the whole chunk budget.
fn blocks_to_target(m: &mut Machine, target: u64) {
    while m.counters().instructions < target && !m.halted() {
        let remaining = target - m.counters().instructions;
        let stats = m.run_blocks(remaining).expect("kernel does not fault");
        if stats.executed == 0 && !stats.checkpoint {
            break;
        }
    }
}

/// Same, through the profile-directed superblock tier.
fn superblocks_to_target(m: &mut Machine, target: u64) {
    while m.counters().instructions < target && !m.halted() {
        let remaining = target - m.counters().instructions;
        let stats = m.run_superblocks(remaining).expect("kernel does not fault");
        if stats.executed == 0 && !stats.checkpoint {
            break;
        }
    }
}

/// Same, with per-instruction `step()` dispatch.
fn steps_to_target(m: &mut Machine, target: u64) {
    while m.counters().instructions < target && !m.halted() {
        m.step().expect("kernel does not fault");
    }
}

/// Advances every lane to `target` retired instructions (kernel lanes
/// carry identical state, so they advance together; a stalled group
/// would spin forever, which the round guard converts into a failure).
fn lanes_to_target(lm: &mut LaneMachine, target: u64) {
    let mut rounds = 0u32;
    while lm.lane_counters(0).instructions < target && !lm.all_done() {
        lm.run(target - lm.lane_counters(0).instructions);
        rounds += 1;
        assert!(rounds < 1_000_000, "lane tier stalled before {target} instructions");
    }
}

/// The shared decoded image the block, superblock, and lane tiers all
/// execute from.
fn image_for(kind: KernelKind, frame: &GrayImage) -> Arc<MachineImage> {
    let inst = kind.build(frame).expect("kernel builds");
    Arc::new(
        MachineImage::build(
            inst.program(),
            inst.min_dmem_words(),
            CycleModel::default(),
            EnergyModel::default(),
        )
        .expect("image builds"),
    )
}

#[test]
fn all_kernels_match_step_mode_exactly() {
    let frame = GrayImage::synthetic(7, 16, 16);
    for kind in KernelKind::ALL {
        let image = image_for(kind, &frame);
        let mut by_step = Machine::from_image(&image);
        let mut by_block = Machine::from_image(&image);
        let mut by_super = Machine::from_image(&image);
        let mut by_lanes = LaneMachine::new(&image, 4);
        steps_to_target(&mut by_step, BUDGET);
        blocks_to_target(&mut by_block, BUDGET);
        superblocks_to_target(&mut by_super, BUDGET);
        lanes_to_target(&mut by_lanes, BUDGET);
        assert_same_state(&by_step, &by_block, &format!("{kind:?} full run, block tier"));
        assert_same_state(&by_step, &by_super, &format!("{kind:?} full run, superblock tier"));
        for lane in 0..by_lanes.width() {
            assert!(by_lanes.lane_error(lane).is_none(), "{kind:?} lane {lane} faulted");
            let m = by_lanes.extract(lane);
            assert_same_state(&by_step, &m, &format!("{kind:?} full run, lane {lane}"));
        }
    }
}

#[test]
fn all_kernels_match_step_mode_under_chunked_budgets() {
    let frame = GrayImage::synthetic(7, 16, 16);
    let mut rng = StdRng::seed_from_u64(0x5eed_b10c);
    for kind in KernelKind::ALL {
        let image = image_for(kind, &frame);
        let mut by_step = Machine::from_image(&image);
        let mut by_block = Machine::from_image(&image);
        let mut by_super = Machine::from_image(&image);
        let mut by_lanes = LaneMachine::new(&image, 2);
        let mut target = 0u64;
        // Ragged chunks land budget boundaries mid-block, so the fused
        // tiers must fall back to single steps and later re-enter at
        // non-leader pcs (and the lane tier must take its scalar
        // fallback) — compare after every chunk, not just at the end.
        for round in 0..64 {
            target += 1 + u64::from(rng.next_u32() % 97);
            steps_to_target(&mut by_step, target);
            blocks_to_target(&mut by_block, target);
            superblocks_to_target(&mut by_super, target);
            lanes_to_target(&mut by_lanes, target);
            assert_same_state(&by_step, &by_block, &format!("{kind:?} chunk {round}, block"));
            assert_same_state(&by_step, &by_super, &format!("{kind:?} chunk {round}, superblock"));
            let lane0 = by_lanes.extract(0);
            assert_same_state(&by_step, &lane0, &format!("{kind:?} chunk {round}, lane 0"));
            if by_step.halted() {
                break;
            }
        }
    }
}
