//! Whole-stack determinism: identical seeds and configurations produce
//! bit-identical traces, simulations, and experiment tables.

use std::path::Path;

use nvp::experiments::{f1_power_profiles, t1_chip_gallery, ExpConfig};
use nvp::prelude::*;

#[test]
fn traces_are_pure_functions_of_seed() {
    for seed in [1u64, 99, 12345] {
        let a = harvester::wrist_watch(seed, 3.0);
        let b = harvester::wrist_watch(seed, 3.0);
        assert_eq!(a, b);
    }
    assert_ne!(harvester::wrist_watch(1, 3.0), harvester::wrist_watch(2, 3.0));
}

#[test]
fn full_platform_runs_are_reproducible() {
    let frame = GrayImage::synthetic(5, 16, 16);
    let kernel = KernelKind::Median.build(&frame).unwrap();
    let trace = harvester::wrist_watch(4, 4.0);
    let backup = BackupModel::distributed(NvmTechnology::SttMram, 2048);

    let run = || {
        let mut cfg = SystemConfig::default();
        cfg.dmem_words = cfg.dmem_words.max(kernel.min_dmem_words());
        let mut sys =
            IntermittentSystem::new(kernel.program(), cfg, backup, BackupPolicy::demand()).unwrap();
        let report = sys.run(&trace).unwrap();
        (report, kernel.output_of(sys.machine()))
    };
    let (r1, out1) = run();
    let (r2, out2) = run();
    assert_eq!(r1, r2);
    assert_eq!(out1, out2);
    // Energy accounting is bit-identical, not merely close.
    assert_eq!(r1.energy.compute.get().to_bits(), r2.energy.compute.get().to_bits());
}

#[test]
fn experiment_tables_are_reproducible() {
    let cfg = ExpConfig::quick();
    assert_eq!(t1_chip_gallery::table(&cfg), t1_chip_gallery::table(&cfg));
    assert_eq!(f1_power_profiles::table(&cfg), f1_power_profiles::table(&cfg));
}

#[test]
fn trace_csv_round_trip_preserves_simulation() {
    let trace = harvester::wrist_watch(6, 1.0);
    let round_tripped = PowerTrace::from_csv(&trace.to_csv()).unwrap();
    let program = assemble("x: addi r1, r1, 1\n j x").unwrap();
    let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
    let run = |t: &PowerTrace| {
        let mut sys = IntermittentSystem::new(
            &program,
            SystemConfig::default(),
            backup,
            BackupPolicy::demand(),
        )
        .unwrap();
        sys.run(t).unwrap()
    };
    let a = run(&trace);
    let b = run(&round_tripped);
    // CSV stores 9 decimals of power; committed-instruction counts agree
    // to well under a tenth of a percent.
    let diff = (a.committed as f64 - b.committed as f64).abs();
    assert!(diff <= a.committed as f64 * 1e-3 + 1.0, "{} vs {}", a.committed, b.committed);
}

/// A temp dir unique to this process and call, so concurrent test
/// invocations never race on `remove_dir_all`.
fn unique_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("{tag}_{}_{n}", std::process::id()))
}

/// Reads every artifact in `dir` as `(file name, bytes)`, sorted by name.
fn artifact_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            let name = e.file_name().into_string().unwrap();
            let bytes = std::fs::read(e.path()).unwrap();
            (name, bytes)
        })
        .collect();
    out.sort();
    out
}

#[test]
fn run_all_twice_is_identical() {
    let cfg = ExpConfig::quick();
    let dir1 = unique_dir("nvp_det_rerun");
    let dir2 = unique_dir("nvp_det_rerun");
    let a = nvp::experiments::run_all(&cfg, &dir1).unwrap();
    let b = nvp::experiments::run_all(&cfg, &dir2).unwrap();
    for (ta, tb) in a.tables.iter().zip(&b.tables) {
        assert_eq!(ta, tb, "table {} differs between runs", ta.id());
    }
    let _ = std::fs::remove_dir_all(&dir1);
    let _ = std::fs::remove_dir_all(&dir2);
}

/// The parallel runner must be byte-identical to the sequential
/// reference: every CSV and `RESULTS.md`, for more than one seed set.
#[test]
fn parallel_run_all_matches_sequential_bytes() {
    let mut shifted = ExpConfig::quick();
    shifted.profile_seeds = vec![3, 4];
    shifted.frame_seed = 11;
    for (tag, cfg) in [("quick", ExpConfig::quick()), ("shifted", shifted)] {
        let par_dir = unique_dir("nvp_det_par");
        let seq_dir = unique_dir("nvp_det_seq");
        let par = nvp::experiments::run_all(&cfg, &par_dir).unwrap();
        let seq = nvp::experiments::run_all_sequential(&cfg, &seq_dir).unwrap();
        assert_eq!(par.files.len(), seq.files.len(), "{tag}: file counts differ");

        let par_bytes = artifact_bytes(&par_dir);
        let seq_bytes = artifact_bytes(&seq_dir);
        assert_eq!(par_bytes.len(), seq_bytes.len(), "{tag}: artifact counts differ");
        for ((pn, pb), (sn, sb)) in par_bytes.iter().zip(&seq_bytes) {
            assert_eq!(pn, sn, "{tag}: artifact names diverge");
            assert_eq!(pb, sb, "{tag}: {pn} differs between parallel and sequential runs");
        }
        let _ = std::fs::remove_dir_all(&par_dir);
        let _ = std::fs::remove_dir_all(&seq_dir);
    }
}
