//! Energy-conservation property shared by both platforms.
//!
//! Whatever the phase logic does, the unified `EnergyFrontEnd` must
//! keep the books balanced: nothing is converted that was not
//! harvested, and every converted joule is either spent on a named
//! account (compute, backup, restore, sleep, regulator), still stored
//! at the end, counted as storage waste (overflow + leak), or was the
//! residual charge discarded by a brown-out. The only unaccounted term
//! is that brown-out residual, so the imbalance must be non-negative
//! and bounded by `rollbacks × (largest single draw)`.

use nvp::prelude::*;

/// Per-rollback bound on the charge a brown-out may discard beyond the
/// failed request itself: generous headroom over any single
/// instruction's draw (pJ–nJ scale) in either platform.
const STEP_DRAW_BOUND_J: f64 = 1e-6;

/// Asserts the conservation invariant for one finished run.
fn assert_conserved(label: &str, e: &nvp::platform::EnergyBreakdown, rollbacks: u64, slack_j: f64) {
    assert!(
        e.harvested.get() + 1e-12 >= e.converted.get(),
        "{label}: converted {} exceeds harvested {}",
        e.converted,
        e.harvested
    );
    let accounted = e.compute
        + e.backup
        + e.restore
        + e.sleep
        + e.regulator
        + e.stored_at_end
        + e.storage_wasted;
    let residual = (e.converted - accounted).get();
    let tol = 1e-9 * e.converted.get() + 1e-12;
    assert!(residual >= -tol, "{label}: over-accounted by {residual} J");
    let bound = rollbacks as f64 * slack_j + tol;
    assert!(
        residual <= bound,
        "{label}: {residual} J unaccounted exceeds brown-out bound {bound} J \
         ({rollbacks} rollbacks)"
    );
}

/// Seeded traces spanning calm and turbulent supplies.
fn traces() -> Vec<(String, PowerTrace)> {
    let mut out = Vec::new();
    for seed in [1u64, 7, 42] {
        out.push((format!("wrist_watch[{seed}]"), harvester::wrist_watch(seed, 4.0)));
        out.push((format!("solar_indoor[{seed}]"), harvester::solar_indoor(seed, 4.0)));
        out.push((format!("rf_wifi[{seed}]"), harvester::rf_wifi(seed, 4.0)));
    }
    out
}

fn workload() -> Program {
    assemble("li r2, 400\nloop: addi r1, r1, 1\nbne r1, r2, loop\nhalt").unwrap()
}

#[test]
fn intermittent_system_conserves_energy() {
    let program = workload();
    for (label, trace) in traces() {
        for tech in [NvmTechnology::Feram, NvmTechnology::SttMram] {
            let backup = BackupModel::distributed(tech, 2048);
            let slack = backup.backup_energy.get() + STEP_DRAW_BOUND_J;
            let mut sys = IntermittentSystem::new(
                &program,
                SystemConfig::default(),
                backup,
                BackupPolicy::demand(),
            )
            .unwrap();
            let report = sys.run(&trace).unwrap();
            assert_conserved(
                &format!("nvp/{tech:?}/{label}"),
                &report.energy,
                report.rollbacks,
                slack,
            );
        }
    }
}

#[test]
fn wait_compute_system_conserves_energy() {
    let program = workload();
    let cost = measure_task(&program, &SystemConfig::default(), 1_000_000).unwrap();
    for (label, trace) in traces() {
        let cfg = WaitComputeConfig::default().sized_for(&cost, 1.3);
        // Each wait-compute draw is one regulator-inflated instruction.
        let slack = STEP_DRAW_BOUND_J / cfg.discharge_efficiency;
        let mut sys = WaitComputeSystem::new(&program, cfg).unwrap();
        let report = sys.run(&trace).unwrap();
        assert_conserved(&format!("wait/{label}"), &report.energy, report.rollbacks, slack);
    }
}
