//! F12 fault-campaign properties: trial outcomes are bit-identical
//! across same-seed reruns and across worker thread counts, and a
//! disabled fault plan is a strict no-op on the platform — the same
//! guarantees the golden-digest suite pins for the artifact files.

use nvp::experiments::{f12_fault_resilience, set_thread_override, ExpConfig};
use nvp::prelude::*;

/// One faulted platform run: a full plan (tears, restore failures,
/// retention decay) on a choppy wearable trace.
fn faulted_run(seed: u64) -> RunReport {
    let program = assemble("start: addi r1, r1, 1\n sw r1, 0(r0)\n j start").unwrap();
    let retention = RetentionShaper::new(RelaxPolicy::Linear, 16, 0.01, 100.0).bit_retention();
    let plan = FaultPlan::with_rates(seed, 0.3, 0.2).with_retention(retention);
    let mut sys = IntermittentSystem::with_faults(
        &program,
        SystemConfig::default(),
        BackupModel::distributed(NvmTechnology::Feram, 2048),
        BackupPolicy::demand(),
        plan,
    )
    .unwrap();
    sys.run(&harvester::wrist_watch(3, 3.0)).unwrap()
}

#[test]
fn faulted_trials_are_bit_identical_across_same_seed_reruns() {
    let a = faulted_run(17);
    let b = faulted_run(17);
    assert_eq!(a, b);
    // Energy accounting is bit-identical, not merely close.
    assert_eq!(a.energy.compute.get().to_bits(), b.energy.compute.get().to_bits());
    assert_eq!(a.energy.backup.get().to_bits(), b.energy.backup.get().to_bits());
    // A different fault seed is a genuinely different trial.
    assert_ne!(faulted_run(17), faulted_run(18));
}

#[test]
fn f12_table_is_bit_identical_across_thread_counts() {
    let cfg = ExpConfig::quick();
    set_thread_override(Some(1));
    let sequential = f12_fault_resilience::table(&cfg);
    set_thread_override(Some(3));
    let threaded = f12_fault_resilience::table(&cfg);
    set_thread_override(None);
    let default_pool = f12_fault_resilience::table(&cfg);
    assert_eq!(sequential.to_csv(), threaded.to_csv(), "1 vs 3 workers");
    assert_eq!(sequential.to_csv(), default_pool.to_csv(), "1 worker vs hardware default");
    // And a same-seed rerun reproduces the table byte-for-byte.
    assert_eq!(sequential.to_csv(), f12_fault_resilience::table(&cfg).to_csv());
}

#[test]
fn disabled_fault_plan_is_a_strict_noop() {
    let program = assemble("start: addi r1, r1, 1\n sw r1, 0(r0)\n j start").unwrap();
    let trace = harvester::wrist_watch(5, 3.0);
    let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
    let plain =
        IntermittentSystem::new(&program, SystemConfig::default(), backup, BackupPolicy::demand())
            .unwrap()
            .run(&trace)
            .unwrap();
    let none = IntermittentSystem::with_faults(
        &program,
        SystemConfig::default(),
        backup,
        BackupPolicy::demand(),
        FaultPlan::none(),
    )
    .unwrap()
    .run(&trace)
    .unwrap();
    assert_eq!(plain, none);
    assert_eq!(plain.energy.compute.get().to_bits(), none.energy.compute.get().to_bits());
    assert_eq!(none.backups_torn + none.restores_corrupt + none.safe_mode_entries, 0);
    assert_eq!(none.committed_lost, 0);
    assert_eq!(none.committed_surviving(), none.committed);
}
