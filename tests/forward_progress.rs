//! Cross-crate forward-progress properties: the orderings the survey
//! reports must hold end-to-end through the public API.

use nvp::platform::measure_task;
use nvp::prelude::*;

fn sobel_kernel() -> KernelInstance {
    let frame = GrayImage::synthetic(7, 16, 16);
    KernelKind::Sobel.build(&frame).unwrap()
}

fn nvp_report(kernel: &KernelInstance, trace: &PowerTrace) -> nvp::platform::RunReport {
    let mut cfg = SystemConfig::default();
    cfg.dmem_words = cfg.dmem_words.max(kernel.min_dmem_words());
    let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
    let mut sys =
        IntermittentSystem::new(kernel.program(), cfg, backup, BackupPolicy::demand()).unwrap();
    sys.run(trace).unwrap()
}

fn wait_report(kernel: &KernelInstance, trace: &PowerTrace) -> nvp::platform::RunReport {
    let sys_cfg = SystemConfig::default();
    let cost = measure_task(kernel.program(), &sys_cfg, 100_000_000).unwrap();
    let mut cfg = WaitComputeConfig::default().sized_for(&cost, 1.3);
    cfg.dmem_words = cfg.dmem_words.max(kernel.min_dmem_words());
    let mut sys = WaitComputeSystem::new(kernel.program(), cfg).unwrap();
    sys.run(trace).unwrap()
}

#[test]
fn nvp_beats_wait_compute_on_every_wearable_profile() {
    let kernel = sobel_kernel();
    for seed in 1..=5u64 {
        let trace = harvester::wrist_watch(seed, 5.0);
        let nvp = nvp_report(&kernel, &trace);
        let wait = wait_report(&kernel, &trace);
        assert!(
            nvp.forward_progress() >= wait.forward_progress(),
            "profile {seed}: nvp {} < wait {}",
            nvp.forward_progress(),
            wait.forward_progress()
        );
        assert!(nvp.forward_progress() > 0, "profile {seed}");
    }
}

#[test]
fn forward_progress_scales_with_income() {
    let kernel = sobel_kernel();
    let base = harvester::wrist_watch(1, 5.0);
    let fp1 = nvp_report(&kernel, &base).forward_progress();
    let fp2 = nvp_report(&kernel, &base.scaled(2.0)).forward_progress();
    let fp4 = nvp_report(&kernel, &base.scaled(4.0)).forward_progress();
    assert!(fp1 < fp2 && fp2 < fp4, "{fp1} {fp2} {fp4}");
}

#[test]
fn committed_work_is_conserved() {
    let kernel = sobel_kernel();
    let trace = harvester::wrist_watch(2, 5.0);
    let r = nvp_report(&kernel, &trace);
    assert_eq!(
        r.committed + r.lost + r.uncommitted_at_end,
        r.executed,
        "every executed instruction is committed, lost, or pending"
    );
    assert_eq!(r.lost, 0, "demand policy loses nothing");
}

#[test]
fn energy_is_conserved() {
    let kernel = sobel_kernel();
    let trace = harvester::wrist_watch(3, 5.0);
    let r = nvp_report(&kernel, &trace);
    let e = r.energy;
    assert!(e.converted <= e.harvested);
    let spent = e.compute + e.backup + e.restore + e.sleep + e.regulator;
    assert!(spent <= e.converted * (1.0 + 1e-9), "spent {spent} exceeds converted {}", e.converted);
}

#[test]
fn continuous_power_is_the_upper_bound() {
    // No power trace can beat uninterrupted execution per unit time.
    let kernel = sobel_kernel();
    let duration = 3.0;
    let continuous = nvp_report(&kernel, &PowerTrace::constant(1e-4, 5e-3, duration));
    let harvested = nvp_report(&kernel, &harvester::wrist_watch(1, duration));
    assert!(continuous.forward_progress() > harvested.forward_progress());
    assert!(continuous.on_fraction() > 0.95);
}
