//! Differential testing of the execution tiers over fuzzed programs.
//!
//! The grammar fuzzer (`nvp_workloads::fuzz`) generates seeded NV16
//! programs shaped to stress exactly what the fused tiers specialize
//! on — loops, branch diamonds, subroutines, divide-by-zero, memory
//! traffic — and every program must execute identically under
//! per-instruction `step()`, the block tier, the superblock tier, and
//! the SoA lane tier. Lanes are driven with *distinct* input-port
//! values so branch directions genuinely diverge across the group and
//! the peel paths run, and each lane is checked against a scalar
//! machine given the same input. Wild-mode programs may fault; every
//! tier must then report the identical error with identical prior
//! state.

use std::sync::Arc;

use nvp_sim::{CycleModel, EnergyModel, LaneMachine, Machine, MachineImage, SimError};
use nvp_workloads::fuzz::{generate, FuzzClass, FuzzedProgram};

/// Ample headroom over the fuzzer's bounded loops.
const BUDGET: u64 = 200_000;

/// Two independent seed families, as many programs each.
const SEED_FAMILIES: [u64; 2] = [0x00A1_0000, 0x00B2_0000];
const PROGRAMS_PER_FAMILY: u64 = 12;

/// Lane width used for the divergence runs.
const WIDTH: usize = 4;

fn image_of(f: &FuzzedProgram) -> Arc<MachineImage> {
    Arc::new(
        MachineImage::build(
            &f.program,
            f.dmem_words,
            CycleModel::default(),
            EnergyModel::default(),
        )
        .expect("fuzzed image builds"),
    )
}

/// Runs `m` to halt or fault through `advance`, returning the error.
fn drive(
    m: &mut Machine,
    mut advance: impl FnMut(&mut Machine) -> Result<bool, SimError>,
) -> Option<SimError> {
    loop {
        match advance(m) {
            Ok(true) => return None,
            Ok(false) => {
                assert!(m.counters().instructions < BUDGET, "program exceeded budget");
            }
            Err(e) => return Some(e),
        }
    }
}

fn assert_same(a: &Machine, b: &Machine, ctx: &str, src: &str) {
    assert_eq!(a.snapshot(), b.snapshot(), "{ctx}: state diverged\n{src}");
    assert_eq!(a.dmem(), b.dmem(), "{ctx}: memory diverged\n{src}");
    assert_eq!(a.out_log(), b.out_log(), "{ctx}: output log diverged\n{src}");
    let (ca, cb) = (a.counters(), b.counters());
    assert_eq!(ca.instructions, cb.instructions, "{ctx}: retired counts diverged\n{src}");
    assert_eq!(ca.cycles, cb.cycles, "{ctx}: cycles diverged\n{src}");
    assert_eq!(ca.class_counts, cb.class_counts, "{ctx}: class counts diverged\n{src}");
    assert_eq!(ca.branches_taken, cb.branches_taken, "{ctx}: branch counts diverged\n{src}");
    assert_eq!(
        ca.energy_j.to_bits(),
        cb.energy_j.to_bits(),
        "{ctx}: energy not bit-identical\n{src}"
    );
}

/// Exercises one fuzzed program across all four tiers.
fn check_program(f: &FuzzedProgram, tag: &str) {
    let image = image_of(f);
    // Distinct port-0 inputs per lane: the fuzzed `in r7, 0` read makes
    // downstream branch directions lane-dependent.
    let inputs: [u16; WIDTH] = [0x0000, 0x0001, 0x7FFF, 0xFFFE];

    // Scalar reference per input, by single stepping.
    let mut refs: Vec<(Machine, Option<SimError>)> = Vec::new();
    for &input in &inputs {
        let mut m = Machine::from_image(&image);
        m.set_input(0, input);
        let err = drive(&mut m, |m| m.step().map(|_| m.halted()));
        refs.push((m, err));
    }

    // Block and superblock tiers against the same inputs.
    for (name, fused) in [("block", false), ("superblock", true)] {
        for (i, &input) in inputs.iter().enumerate() {
            let mut m = Machine::from_image(&image);
            m.set_input(0, input);
            let err = drive(&mut m, |m| {
                let stats = if fused { m.run_superblocks(BUDGET)? } else { m.run_blocks(BUDGET)? };
                Ok(stats.halted)
            });
            let (reference, ref_err) = &refs[i];
            assert_eq!(&err, ref_err, "{tag}: {name} fault disposition, input {input:#x}");
            assert_same(reference, &m, &format!("{tag}: {name} tier, input {input:#x}"), &f.source);
        }
    }

    // Lane tier: all four inputs in one group.
    let mut lm = LaneMachine::new(&image, WIDTH);
    for (lane, &input) in inputs.iter().enumerate() {
        lm.set_input(lane, 0, input);
    }
    let mut rounds = 0u32;
    while !lm.all_done() {
        lm.run(BUDGET);
        rounds += 1;
        assert!(rounds < 1_000, "{tag}: lane group failed to converge\n{}", f.source);
    }
    for (lane, (reference, ref_err)) in refs.iter().enumerate() {
        assert_eq!(
            lm.lane_error(lane),
            ref_err.as_ref(),
            "{tag}: lane {lane} fault disposition\n{}",
            f.source
        );
        let m = lm.extract(lane);
        assert_same(reference, &m, &format!("{tag}: lane {lane}"), &f.source);
    }
}

#[test]
fn fuzzed_programs_agree_across_all_tiers() {
    for family in SEED_FAMILIES {
        for i in 0..PROGRAMS_PER_FAMILY {
            let f = generate(family + i, FuzzClass::Safe);
            check_program(&f, &format!("safe seed {:#x}", family + i));
        }
    }
}

#[test]
fn fuzzed_faulting_programs_agree_across_all_tiers() {
    for family in SEED_FAMILIES {
        for i in 0..PROGRAMS_PER_FAMILY {
            let f = generate(family + i, FuzzClass::Wild);
            check_program(&f, &format!("wild seed {:#x}", family + i));
        }
    }
}
