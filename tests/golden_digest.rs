//! Golden digests: the evaluation artifacts are pinned byte-for-byte.
//!
//! `run_all(ExpConfig::quick())` — at the default seeds and at a
//! shifted seed set — must produce exactly the SHA-256 digests recorded
//! below. Any change to the simulation, the experiments, or the CSV
//! formatting shows up here as a digest mismatch; a PR that *means* to
//! change the output must re-pin these constants and say so.
//!
//! SHA-256 is implemented inline (FIPS 180-4) because the workspace is
//! offline and takes no hashing dependency; it is checked against the
//! standard test vectors first.

use std::path::PathBuf;

use nvp::experiments::{run_all, ExpConfig};

/// Minimal FIPS 180-4 SHA-256, sufficient for hashing artifact files.
mod sha256 {
    const K: [u32; 64] = [
        0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1, 0x923f82a4,
        0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3, 0x72be5d74, 0x80deb1fe,
        0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786, 0x0fc19dc6, 0x240ca1cc, 0x2de92c6f,
        0x4a7484aa, 0x5cb0a9dc, 0x76f988da, 0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7,
        0xc6e00bf3, 0xd5a79147, 0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc,
        0x53380d13, 0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
        0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070, 0x19a4c116,
        0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a, 0x5b9cca4f, 0x682e6ff3,
        0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208, 0x90befffa, 0xa4506ceb, 0xbef9a3f7,
        0xc67178f2,
    ];

    fn compress(h: &mut [u32; 8], block: &[u8]) {
        let mut w = [0u32; 64];
        for (i, chunk) in block.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes(chunk.try_into().unwrap());
        }
        for i in 16..64 {
            let s0 = w[i - 15].rotate_right(7) ^ w[i - 15].rotate_right(18) ^ (w[i - 15] >> 3);
            let s1 = w[i - 2].rotate_right(17) ^ w[i - 2].rotate_right(19) ^ (w[i - 2] >> 10);
            w[i] = w[i - 16].wrapping_add(s0).wrapping_add(w[i - 7]).wrapping_add(s1);
        }
        let [mut a, mut b, mut c, mut d, mut e, mut f, mut g, mut hh] = *h;
        for i in 0..64 {
            let s1 = e.rotate_right(6) ^ e.rotate_right(11) ^ e.rotate_right(25);
            let ch = (e & f) ^ (!e & g);
            let t1 = hh.wrapping_add(s1).wrapping_add(ch).wrapping_add(K[i]).wrapping_add(w[i]);
            let s0 = a.rotate_right(2) ^ a.rotate_right(13) ^ a.rotate_right(22);
            let maj = (a & b) ^ (a & c) ^ (b & c);
            let t2 = s0.wrapping_add(maj);
            hh = g;
            g = f;
            f = e;
            e = d.wrapping_add(t1);
            d = c;
            c = b;
            b = a;
            a = t1.wrapping_add(t2);
        }
        for (s, v) in h.iter_mut().zip([a, b, c, d, e, f, g, hh]) {
            *s = s.wrapping_add(v);
        }
    }

    /// Hex-encoded SHA-256 of `data`.
    pub fn hex(data: &[u8]) -> String {
        let mut h: [u32; 8] = [
            0x6a09e667, 0xbb67ae85, 0x3c6ef372, 0xa54ff53a, 0x510e527f, 0x9b05688c, 0x1f83d9ab,
            0x5be0cd19,
        ];
        let mut msg = data.to_vec();
        msg.push(0x80);
        while msg.len() % 64 != 56 {
            msg.push(0);
        }
        msg.extend_from_slice(&(u64::try_from(data.len()).unwrap() * 8).to_be_bytes());
        for block in msg.chunks_exact(64) {
            compress(&mut h, block);
        }
        h.iter().map(|w| format!("{w:08x}")).collect()
    }
}

#[test]
fn sha256_matches_fips_vectors() {
    assert_eq!(
        sha256::hex(b""),
        "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855"
    );
    assert_eq!(
        sha256::hex(b"abc"),
        "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad"
    );
    assert_eq!(
        sha256::hex(b"abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
        "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1"
    );
    // Multi-block input (>64 bytes), exercising the chunk loop.
    assert_eq!(sha256::hex(&[b'a'; 200]), sha256::hex(&"a".repeat(200).into_bytes()),);
}

/// `ExpConfig::quick()` at its default seeds (profiles 1,2 / frame 7).
const GOLDEN_QUICK: &[(&str, &str)] = &[
    ("RESULTS.md", "78268c23124a1c62c0658f29e2534c2e7679d857577f50c9d138f8e00f98b2e5"),
    ("f1.csv", "9cbaa881470c9bc1b0e6828622627433ca248c6c22cb9ab03a6b74a1f9f1a772"),
    ("f10.csv", "56af3235ae90e1aa759a6f6d09d2d6b8f85587d0cac37650db15b9021329273f"),
    ("f11.csv", "bae0b4c19dff11fbbef61e57c2918d8434375c1db38e37c284a7881a01f5bdbf"),
    ("f12.csv", "aed4f5a5c7cf9397665e989f22a1bad40e409e0dfc2a71fce0b069e386b76197"),
    ("f1_profile_1.csv", "c0a486e4bf6a8221a851fb50a2a55e24b670a2ae922827889545484adb163c23"),
    ("f1_profile_2.csv", "58890087758b81c4c76af5f50a0a5fb2234af03073a114dd9223d5ec1a0dae92"),
    ("f2.csv", "b75330f03b7b755d6a623d70dfe0af8600c70cedd24aefd5f493839644d5ac21"),
    ("f2h.csv", "a401c181c2eda4ee331d6a8a1d606f81d25af037f6ff370ef8bd35a66b51c9d6"),
    ("f3.csv", "28a7c39da135029504886ba549749aab8b974b1b6ce83c4694dabe7e08ac72a8"),
    ("f4.csv", "7334fe7d1b82952339be97b64c3016a50b272f55a2fa6e7fec18ca891219f6dc"),
    ("f5.csv", "f687e2b501dbd8ab504563424bf8b21b405f18a1f9e507041e597d7deed3c0d9"),
    ("f6.csv", "374d63c7eac56d86f6fc78e1ab38e93b4efb8b971a4c072b56facab7dd3acfb6"),
    ("f7.csv", "3aae5c3f7e427b1f8f69efe4aed97b55743114ab20c0ea10262d5e63c2e1f05a"),
    ("f8.csv", "487f3f61f36ad35b510bcdf9b14ab4d38c66c4f0d410aea322011564494fb62f"),
    ("f9.csv", "f20de2ea09e4d9ddaa8642458d4ed8248fef6d9dacb0bc083bf8d261e401729a"),
    ("t1.csv", "50337ca83cc003a948355e07286931c45f6e989d8423ba3677c1a3c8664f99de"),
    ("t2.csv", "ba4ce41782253c514394d5fc9d589048a04588aa288ed3b437512cbe334434d6"),
    ("t3.csv", "63b03c2b7fc8b59fe3eb0afba8f60267bbc06bf2c010d0f6a06f2f61766f7b86"),
];

/// `ExpConfig::quick()` with `profile_seeds = [3, 4]`, `frame_seed = 11`.
const GOLDEN_SHIFTED: &[(&str, &str)] = &[
    ("RESULTS.md", "185459126e6531519ec369942f53638560146a764a5f7d7ea5d55f0c50e26cbc"),
    ("f1.csv", "4ec4c0e28260df636f41b6d11b09122f163a1e117ace66e86ed166f1605575b0"),
    ("f10.csv", "4ed59152337b3cf2a5f2635af9f7677b179e7b8f9ff719045f5081f7f94f9312"),
    ("f11.csv", "21d1853cc31eb53b41db540e801ab7a0c24d94ee818efa6b5ecffc5fbc5ef700"),
    ("f12.csv", "1ff9ebcf8554d082d5c5aead4ac5202fe7688ff953476f8ebc602c35e35d7483"),
    ("f1_profile_3.csv", "1fbd3cb89d1d97d4d9a6c007a3e5edaeb04222a98b23883877e5352cc69e8aa4"),
    ("f1_profile_4.csv", "47a2ce861e93ae38a1d7ad3ac9de7f71cecfb6594938c1d155fa36774907e9e6"),
    ("f2.csv", "d66a25d68ac764569de3db1b01e64c50e3a0639ca429135e8157dd75cb3ca42f"),
    ("f2h.csv", "4fadd5edb1edf1774c48311a9b55d3dbfae8d0f1a42bcabb069c8f704a7252f0"),
    ("f3.csv", "c06e1e904a51085b759c151d591aafde56347de9cd8e925becb8402b3da23324"),
    ("f4.csv", "f97a5a61e0a0b056c04700c822907b5c0b4880e70eaa85bdf0daf1a6fc2c8418"),
    ("f5.csv", "d844e805d4ad5d4f0d9aa096325a47398aad22dbb28b077046559bf70ac3a1cb"),
    ("f6.csv", "30158130ab5e1855dd82af1919b8c1490cea74d424d02f9a808a94787d570260"),
    ("f7.csv", "4d0f49408a7c8049c9ebcdcdf0e3fe727edeb0d9d88abb32bd9dda0819242214"),
    ("f8.csv", "1ad4bebcb9d002c869d5023cdc0b8f75273388604fb2e29b280d3cc0e78f4df9"),
    ("f9.csv", "bc9305497e173b241bb6b90e537fbd41fda288be3f5966a43b942910196efbaa"),
    ("t1.csv", "50337ca83cc003a948355e07286931c45f6e989d8423ba3677c1a3c8664f99de"),
    ("t2.csv", "ba4ce41782253c514394d5fc9d589048a04588aa288ed3b437512cbe334434d6"),
    ("t3.csv", "b3bfa70b5ec89723ac2e6081544173cfe7490bb8deda7152934e84369cf8a2a3"),
];

/// A temp dir unique to this process and call, so concurrent test
/// invocations never race on `remove_dir_all`.
fn unique_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("{tag}_{}_{n}", std::process::id()))
}

fn assert_digests(tag: &str, cfg: &ExpConfig, golden: &[(&str, &str)]) {
    let dir = unique_dir("nvp_golden");
    run_all(cfg, &dir).unwrap();
    let mut actual: Vec<(String, String)> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            let name = e.file_name().into_string().unwrap();
            let digest = sha256::hex(&std::fs::read(e.path()).unwrap());
            (name, digest)
        })
        .collect();
    actual.sort();
    let _ = std::fs::remove_dir_all(&dir);

    let actual_names: Vec<&str> = actual.iter().map(|(n, _)| n.as_str()).collect();
    let golden_names: Vec<&str> = golden.iter().map(|(n, _)| *n).collect();
    assert_eq!(actual_names, golden_names, "{tag}: artifact set changed");
    for ((name, digest), (_, want)) in actual.iter().zip(golden) {
        assert_eq!(
            digest, want,
            "{tag}: {name} changed — evaluation output is no longer byte-identical; \
             if the change is intentional, re-pin the digest"
        );
    }
}

#[test]
fn quick_artifacts_match_golden_digests() {
    assert_digests("quick", &ExpConfig::quick(), GOLDEN_QUICK);
}

#[test]
fn shifted_seed_artifacts_match_golden_digests() {
    let mut cfg = ExpConfig::quick();
    cfg.profile_seeds = vec![3, 4];
    cfg.frame_seed = 11;
    assert_digests("shifted", &cfg, GOLDEN_SHIFTED);
}
