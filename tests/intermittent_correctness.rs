//! The NVP value proposition, end to end: every kernel, executed across
//! repeated power failures with hardware backup/restore, produces output
//! **bit-identical** to an uninterrupted run.

use nvp::prelude::*;

/// A deliberately hostile supply: modest 30 ms bursts separated by 80 ms
/// dead gaps. The gap's sleep+run drain (~20 µJ at core power) exceeds
/// the ~12 µJ buffer, forcing a full backup/power-down/restore cycle per
/// burst for any kernel that does not finish within one burst.
fn bursty_trace(cycles: usize) -> PowerTrace {
    let mut segments = Vec::new();
    for _ in 0..cycles {
        segments.push((300e-6, 0.03));
        segments.push((0.0, 0.08));
    }
    PowerTrace::from_segments(1e-4, &segments)
}

fn run_intermittent(kernel: &KernelInstance) -> nvp::platform::RunReport {
    let mut cfg = SystemConfig::default();
    cfg.dmem_words = cfg.dmem_words.max(kernel.min_dmem_words());
    cfg.restart_on_halt = false;
    let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
    let mut sys = IntermittentSystem::new(kernel.program(), cfg, backup, BackupPolicy::demand())
        .expect("platform builds");
    let report = sys.run(&bursty_trace(40)).expect("workload does not fault");
    assert_eq!(
        report.tasks_completed,
        1,
        "{}: task should complete exactly once within the trace",
        kernel.kind()
    );
    let output = kernel.output_of(sys.machine());
    assert_eq!(
        output,
        kernel.reference(),
        "{}: output corrupted by intermittent execution",
        kernel.kind()
    );
    report
}

#[test]
fn every_kernel_survives_power_failures_bit_exact() {
    let frame = GrayImage::synthetic(42, 16, 16);
    for kind in KernelKind::ALL {
        let kernel = kind.build(&frame).expect("kernel builds");
        let report = run_intermittent(&kernel);
        assert_eq!(report.rollbacks, 0, "{kind}: demand policy must not roll back");
    }
}

#[test]
fn heavy_kernels_really_are_interrupted() {
    // The correctness test is only meaningful if execution actually spans
    // power cycles: verify the heavy kernels need several restores.
    let frame = GrayImage::synthetic(42, 16, 16);
    for kind in [KernelKind::Median, KernelKind::Dct8] {
        let kernel = kind.build(&frame).expect("kernel builds");
        let report = run_intermittent(&kernel);
        assert!(
            report.restores >= 2,
            "{kind}: expected multiple power cycles, got {} restores",
            report.restores
        );
        assert!(report.backups >= 2, "{kind}: {} backups", report.backups);
    }
}

#[test]
fn output_also_exact_under_real_harvester_turbulence() {
    // Thousands of emergencies from the synthetic wrist harvester.
    let frame = GrayImage::synthetic(1, 16, 16);
    let kernel = KernelKind::Sobel.build(&frame).expect("kernel builds");
    let mut cfg = SystemConfig::default();
    cfg.dmem_words = cfg.dmem_words.max(kernel.min_dmem_words());
    cfg.restart_on_halt = false;
    let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
    let mut sys = IntermittentSystem::new(kernel.program(), cfg, backup, BackupPolicy::demand())
        .expect("platform builds");
    let _ = sys.run(&harvester::wrist_watch(3, 10.0)).expect("runs");
    let report = *sys.report();
    assert!(report.tasks_completed >= 1, "frame should finish within 10 s");
    assert_eq!(kernel.output_of(sys.machine()), kernel.reference());
}
