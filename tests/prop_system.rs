//! Property-based system tests: invariants that must hold for *any*
//! power trace, policy margin, and sensor frame. Deterministically
//! seeded random sweeps replace the original proptest strategies.

use nvp::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn counter_program() -> Program {
    assemble("start: addi r1, r1, 1\n sw r1, 0(r0)\n j start").unwrap()
}

/// Arbitrary piecewise-constant traces: up to 20 segments of 1–50 ms at
/// 0–2 mW (the full wearable envelope).
fn any_trace(rng: &mut StdRng) -> PowerTrace {
    let n = 1 + rng.random::<u32>() as usize % 19;
    let segments: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.random::<f64>() * 2e-3, 1e-3 + rng.random::<f64>() * (0.05 - 1e-3)))
        .collect();
    PowerTrace::from_segments(1e-4, &segments)
}

fn any_frame(rng: &mut StdRng) -> GrayImage {
    let w = 8 + rng.random::<u32>() as usize % 5;
    let h = 8 + rng.random::<u32>() as usize % 5;
    let pixels: Vec<u8> = (0..w * h).map(|_| rng.random::<u8>()).collect();
    GrayImage::from_pixels(w, h, pixels)
}

/// Accounting identity and energy conservation for any trace and any
/// safe demand margin.
#[test]
fn run_report_invariants() {
    let mut rng = StdRng::seed_from_u64(0x5e5_001);
    for _ in 0..24 {
        let trace = any_trace(&mut rng);
        let margin = 1.5 + rng.random::<f64>() * 3.5;
        let program = counter_program();
        let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
        let mut sys = IntermittentSystem::new(
            &program,
            SystemConfig::default(),
            backup,
            BackupPolicy::OnDemand { margin },
        )
        .unwrap();
        let r = sys.run(&trace).unwrap();

        assert_eq!(r.committed + r.lost + r.uncommitted_at_end, r.executed);
        assert_eq!(r.lost, 0, "safe margins lose nothing");
        assert_eq!(r.rollbacks, 0);
        assert!(
            r.restores >= r.backups.saturating_sub(1),
            "every completed backup is eventually restored (±the last)"
        );
        let e = r.energy;
        assert!(e.converted.get() <= e.harvested.get() + 1e-15);
        let spent = e.compute + e.backup + e.restore + e.sleep + e.regulator;
        assert!(spent.get() <= e.converted.get() + 1e-12);
        assert!(r.on_time_s <= r.duration_s + 1e-9);
    }
}

/// Runs are deterministic for any trace.
#[test]
fn runs_are_deterministic() {
    let mut rng = StdRng::seed_from_u64(0x5e5_002);
    for _ in 0..24 {
        let trace = any_trace(&mut rng);
        let program = counter_program();
        let backup = BackupModel::distributed(NvmTechnology::Reram, 2048);
        let run = || {
            let mut sys = IntermittentSystem::new(
                &program,
                SystemConfig::default(),
                backup,
                BackupPolicy::demand(),
            )
            .unwrap();
            sys.run(&trace).unwrap()
        };
        assert_eq!(run(), run());
    }
}

/// More harvested energy never reduces *surviving* work (the
/// commit-gated metric is deliberately not monotone: a supply that never
/// dips to the backup threshold never commits).
#[test]
fn surviving_work_monotone_in_power_scale() {
    let mut rng = StdRng::seed_from_u64(0x5e5_003);
    for _ in 0..24 {
        let trace = any_trace(&mut rng);
        let scale = 1.1 + rng.random::<f64>() * 2.9;
        let program = counter_program();
        let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
        let run = |t: &PowerTrace| {
            let mut sys = IntermittentSystem::new(
                &program,
                SystemConfig::default(),
                backup,
                BackupPolicy::demand(),
            )
            .unwrap();
            sys.run(t).unwrap().surviving_work()
        };
        let base = run(&trace);
        let boosted = run(&trace.scaled(scale));
        // Allow tiny threshold-alignment slack on pathological traces.
        assert!(
            boosted as f64 >= base as f64 * 0.98,
            "scaling power by {scale} dropped surviving work {base} -> {boosted}"
        );
    }
}

/// Every image kernel matches its reference on arbitrary frames, not
/// just the synthetic generator's output.
#[test]
fn kernels_match_reference_on_arbitrary_frames() {
    let mut rng = StdRng::seed_from_u64(0x5e5_004);
    for _ in 0..24 {
        let frame = any_frame(&mut rng);
        for kind in [
            KernelKind::Sobel,
            KernelKind::Smooth,
            KernelKind::Corners,
            KernelKind::Integral,
            KernelKind::Crc16,
            KernelKind::Rle,
            KernelKind::Histogram,
        ] {
            let kernel = kind.build(&frame).unwrap();
            let out = kernel.run_to_completion().unwrap();
            assert_eq!(out, kernel.reference().to_vec(), "{}", kind);
        }
    }
}

/// The persistent counter in NVM equals executed increments observed by
/// the program, no matter how power behaved.
#[test]
fn nvm_counter_consistent() {
    let mut rng = StdRng::seed_from_u64(0x5e5_005);
    for _ in 0..24 {
        let trace = any_trace(&mut rng);
        let program = counter_program();
        let backup = BackupModel::distributed(NvmTechnology::Feram, 2048);
        let mut sys = IntermittentSystem::new(
            &program,
            SystemConfig::default(),
            backup,
            BackupPolicy::demand(),
        )
        .unwrap();
        let r = sys.run(&trace).unwrap();
        let counter = u64::from(sys.machine().read_word(0).unwrap());
        // Each loop iteration is 3 instructions (addi, sw, j); the store
        // is the middle one, so the counter trails executed/3 by at most
        // one and can never exceed it… modulo 16-bit wrap.
        if r.executed < 3 * 65_535 {
            let iterations = r.executed / 3;
            assert!(counter <= iterations + 1, "counter {counter} vs iterations {iterations}");
            assert!(counter + 1 >= iterations.min(65_535), "counter {counter} vs {iterations}");
        }
    }
}
