//! Scheduler determinism: the campaign artifacts are byte-identical no
//! matter how many workers the work-stealing scheduler runs, and no
//! matter whether the simulation cache is cold or warm. This is the
//! contract that lets `NVP_THREADS` be a pure performance knob and the
//! cache a pure time saver — neither may ever show up in the bytes.

use std::path::{Path, PathBuf};

use nvp::experiments::{run_all, set_thread_override, ExpConfig};

/// A temp dir unique to this process and call, so concurrent test
/// invocations never race on `remove_dir_all`.
fn unique_dir(tag: &str) -> PathBuf {
    use std::sync::atomic::{AtomicUsize, Ordering};
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("{tag}_{}_{n}", std::process::id()))
}

/// Reads every artifact in `dir` as `(file name, bytes)`, sorted by name.
fn artifact_bytes(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut out: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .unwrap()
        .map(|e| {
            let e = e.unwrap();
            (e.file_name().into_string().unwrap(), std::fs::read(e.path()).unwrap())
        })
        .collect();
    out.sort();
    out
}

fn assert_same_artifacts(tag: &str, reference: &[(String, Vec<u8>)], dir: &Path) {
    let got = artifact_bytes(dir);
    assert_eq!(reference.len(), got.len(), "{tag}: artifact counts differ");
    for ((rn, rb), (gn, gb)) in reference.iter().zip(&got) {
        assert_eq!(rn, gn, "{tag}: artifact names diverge");
        assert_eq!(rb, gb, "{tag}: {rn} differs from the single-thread reference");
    }
}

/// One test driving every thread-count and cache-temperature variation:
/// the thread override and the cache are process-global, so sequencing
/// the runs inside a single test keeps them race-free.
#[test]
fn artifacts_are_byte_identical_across_thread_counts_and_cache_states() {
    let cfg = ExpConfig::quick();

    // Reference: fully sequential, cold in-memory cache.
    nvp::experiments::reset_sim_cache();
    set_thread_override(Some(1));
    let ref_dir = unique_dir("nvp_sched_det_ref");
    run_all(&cfg, &ref_dir).unwrap();
    let reference = artifact_bytes(&ref_dir);

    // Warm rerun at the same width: the cache must not leak into bytes.
    let warm_dir = unique_dir("nvp_sched_det_warm1");
    run_all(&cfg, &warm_dir).unwrap();
    assert_same_artifacts("threads=1 warm", &reference, &warm_dir);
    let _ = std::fs::remove_dir_all(&warm_dir);

    // Wider schedules, cold and warm each: stealing order, helper
    // recruitment, and cache temperature must all be invisible.
    for threads in [2usize, 8] {
        set_thread_override(Some(threads));
        for temperature in ["cold", "warm"] {
            if temperature == "cold" {
                nvp::experiments::reset_sim_cache();
            }
            let dir = unique_dir("nvp_sched_det_run");
            run_all(&cfg, &dir).unwrap();
            assert_same_artifacts(&format!("threads={threads} {temperature}"), &reference, &dir);
            let _ = std::fs::remove_dir_all(&dir);
        }
    }

    set_thread_override(None);
    let _ = std::fs::remove_dir_all(&ref_dir);
}
